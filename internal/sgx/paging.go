package sgx

import (
	"fmt"

	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/pagestore"
	"autarky/internal/sim"
)

// This file models the two SGX paging mechanisms the paper's prototype
// supports (§6): the SGXv1 privileged EWB/ELDU instructions, and the SGXv2
// dynamic memory-management instructions used for in-enclave software
// paging.

// requirePrivileged rejects calls made while executing in enclave mode
// (these are ring-0 instructions; on the single-hart model, enclave mode
// and kernel mode cannot coexist).
func (c *CPU) requirePrivileged(op string) error {
	if c.cur != nil {
		return fmt.Errorf("%w: %s in enclave mode", ErrOutsideEnclave, op)
	}
	return nil
}

// epcmFor validates that pfn is an EPC frame owned by e at linear address
// va and returns its entry.
func (c *CPU) epcmFor(e *Enclave, va mmu.VAddr, pfn mmu.PFN) (*EPCMEntry, error) {
	if !c.EPC.Contains(pfn) {
		return nil, fmt.Errorf("%w: PFN %d not in EPC", ErrEPCMConflict, pfn)
	}
	ent := &c.EPC.Entry(pfn).EPCM
	if !ent.Valid || ent.EnclaveID != e.ID || ent.LinAddr != va.PageBase() {
		return nil, fmt.Errorf("%w: EPCM mismatch for %s", ErrEPCMConflict, va)
	}
	return ent, nil
}

// EBLOCK marks an enclave page as blocked, the first step of eviction.
// Subsequent enclave accesses to the page fault.
func (c *CPU) EBLOCK(e *Enclave, va mmu.VAddr, pfn mmu.PFN) error {
	if err := c.requirePrivileged("EBLOCK"); err != nil {
		return err
	}
	ent, err := c.epcmFor(e, va, pfn)
	if err != nil {
		return err
	}
	if ent.Blocked {
		return fmt.Errorf("%w: EBLOCK on blocked page %s", ErrEPCMConflict, va)
	}
	ent.Blocked = true
	ent.blockEpoch = e.trackEpoch
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EBLOCK)
	c.m.Inc(metrics.CntEBLOCK)
	return nil
}

// ETRACK opens a new tracking epoch for the enclave. The OS must complete a
// TLB shootdown round (CompleteShootdown) before EWB will accept pages
// blocked in earlier epochs.
func (c *CPU) ETRACK(e *Enclave) error {
	if err := c.requirePrivileged("ETRACK"); err != nil {
		return err
	}
	e.trackEpoch++
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.ETRACK)
	c.m.Inc(metrics.CntETRACK)
	return nil
}

// CompleteShootdown records that the OS performed the IPI round flushing
// stale enclave TLB entries for the current epoch. The cost of the actual
// shootdown is charged by the OS through mmu.TLB.Shootdown.
func (c *CPU) CompleteShootdown(e *Enclave) {
	e.shootdownEpoch = e.trackEpoch
}

// EWB evicts a blocked, tracked enclave page: the content is sealed with a
// fresh version (replay protection, modelling the VA-page chain) and handed
// to the untrusted paging backend, and the frame is freed. The OS must
// separately unmap the PTE; hardware does not touch page tables.
func (c *CPU) EWB(e *Enclave, va mmu.VAddr, pfn mmu.PFN, store pagestore.PagingBackend) error {
	if err := c.requirePrivileged("EWB"); err != nil {
		return err
	}
	ent, err := c.epcmFor(e, va, pfn)
	if err != nil {
		return err
	}
	if ent.Type != PTReg {
		return fmt.Errorf("%w: EWB on %s page", ErrEPCMConflict, ent.Type)
	}
	if !ent.Blocked {
		return fmt.Errorf("%w: EWB on unblocked page %s", ErrEPCMConflict, va)
	}
	if e.trackEpoch <= ent.blockEpoch || e.shootdownEpoch < e.trackEpoch {
		return ErrNotTracked
	}
	vpn := va.VPN()
	version := e.versions[vpn] + 1
	// Seal into the enclave's reusable buffer: the backend copies whatever
	// it retains (ownership contract), so the buffer is free again as soon
	// as Evict returns.
	ct, err := e.sealer.SealAppend(e.sealBuf[:0], va.PageBase(), version, c.EPC.Data(pfn))
	if err != nil {
		return err
	}
	e.sealBuf = ct[:0]
	blob := pagestore.Blob{Ciphertext: ct, Version: version, EnclaveID: e.ID}
	e.versions[vpn] = version
	if e.swappedPerms == nil {
		e.swappedPerms = make(map[uint64]mmu.Perms)
	}
	e.swappedPerms[vpn] = ent.Perms
	if err := store.Evict(e.ID, va.PageBase(), blob); err != nil {
		return err
	}
	c.EPC.Free(pfn)
	// EWB's cost is dominated by the page re-encryption; attribute it to
	// crypto, like the paper's Fig.5 "SGX paging incl. crypto" stack.
	c.Clock.ChargeAs(sim.CatCrypto, c.Costs.EWB)
	c.m.Inc(metrics.CntEWB)
	return nil
}

// ELDU loads a previously evicted page back into a fresh EPC frame,
// verifying integrity and freshness against the trusted version counter.
// It returns the new frame for the OS to map. A tampered or replayed blob
// fails with pagestore.ErrIntegrity and allocates nothing.
func (c *CPU) ELDU(e *Enclave, va mmu.VAddr, store pagestore.PagingBackend) (mmu.PFN, error) {
	if err := c.requirePrivileged("ELDU"); err != nil {
		return mmu.NoPFN, err
	}
	va = va.PageBase()
	vpn := va.VPN()
	perms, swapped := e.swappedPerms[vpn]
	if !swapped {
		return mmu.NoPFN, fmt.Errorf("%w: ELDU of page %s that was never evicted", ErrEPCMConflict, va)
	}
	blob, err := store.Fetch(e.ID, va)
	if err != nil {
		return mmu.NoPFN, err
	}
	// Decrypt into the enclave's reusable buffer; the plaintext is copied
	// into the fresh frame below, before anything else touches the buffer.
	plain, err := e.sealer.OpenAppend(e.openBuf[:0], va, e.versions[vpn], blob)
	if err != nil {
		return mmu.NoPFN, err
	}
	e.openBuf = plain[:0]
	pfn, err := c.EPC.Alloc()
	if err != nil {
		return mmu.NoPFN, err
	}
	f := c.EPC.Entry(pfn)
	copy(f.Data, plain)
	f.EPCM = EPCMEntry{
		Valid:     true,
		Type:      PTReg,
		EnclaveID: e.ID,
		LinAddr:   va,
		Perms:     perms,
	}
	delete(e.swappedPerms, vpn)
	if err := store.Drop(e.ID, va); err != nil {
		return mmu.NoPFN, err
	}
	// Like EWB: decrypt-and-verify dominates, so ELDU is crypto work.
	c.Clock.ChargeAs(sim.CatCrypto, c.Costs.ELDU)
	c.m.Inc(metrics.CntELDU)
	return pfn, nil
}

// EAUG adds a zeroed pending page to a running SGXv2 enclave. The enclave
// must EACCEPT (or EACCEPTCOPY) it before use.
func (c *CPU) EAUG(e *Enclave, va mmu.VAddr) (mmu.PFN, error) {
	if err := c.requirePrivileged("EAUG"); err != nil {
		return mmu.NoPFN, err
	}
	if !e.Attrs.Has(AttrSGX2) {
		return mmu.NoPFN, fmt.Errorf("%w: EAUG on SGXv1 enclave", ErrEPCMConflict)
	}
	if !e.Contains(va) || va.Offset() != 0 {
		return mmu.NoPFN, fmt.Errorf("%w: EAUG at %s", ErrBadAddress, va)
	}
	pfn, err := c.EPC.Alloc()
	if err != nil {
		return mmu.NoPFN, err
	}
	f := c.EPC.Entry(pfn)
	f.EPCM = EPCMEntry{
		Valid:     true,
		Type:      PTReg,
		EnclaveID: e.ID,
		LinAddr:   va,
		Perms:     mmu.PermRW,
		Pending:   true,
	}
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EAUG)
	c.m.Inc(metrics.CntEAUG)
	return pfn, nil
}

// EACCEPT is the enclave-mode confirmation of an OS-initiated EPCM change:
// it clears the Pending (EAUG), PR (EMODPR) or Modified (EMODT) flag.
func (c *CPU) EACCEPT(va mmu.VAddr, pfn mmu.PFN) error {
	e, ok := c.InEnclave()
	if !ok {
		return fmt.Errorf("%w: EACCEPT outside enclave mode", ErrOutsideEnclave)
	}
	ent, err := c.epcmFor(e, va, pfn)
	if err != nil {
		return err
	}
	switch {
	case ent.Pending:
		ent.Pending = false
	case ent.PR:
		ent.PR = false
	case ent.Modified:
		ent.Modified = false
	default:
		return fmt.Errorf("%w: EACCEPT with nothing to accept at %s", ErrEPCMConflict, va)
	}
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EACCEPT)
	c.m.Inc(metrics.CntEACCEPT)
	return nil
}

// EACCEPTCOPY accepts a pending EAUG page while initializing it from a
// buffer, setting the requested final permissions. It is the fetch path of
// SGXv2 software self-paging (paper §6: "we overlap EAUG with decryption
// using a temporary buffer").
func (c *CPU) EACCEPTCOPY(va mmu.VAddr, pfn mmu.PFN, src []byte, perms mmu.Perms) error {
	e, ok := c.InEnclave()
	if !ok {
		return fmt.Errorf("%w: EACCEPTCOPY outside enclave mode", ErrOutsideEnclave)
	}
	ent, err := c.epcmFor(e, va, pfn)
	if err != nil {
		return err
	}
	if !ent.Pending {
		return fmt.Errorf("%w: EACCEPTCOPY on non-pending page %s", ErrEPCMConflict, va)
	}
	if len(src) > mmu.PageSize {
		return fmt.Errorf("sgx: EACCEPTCOPY source %d bytes exceeds page", len(src))
	}
	f := c.EPC.Entry(pfn)
	// Initialize from src first, then zero only the tail the source does
	// not cover (a full-page src — the common fetch path — zeroes nothing).
	n := copy(f.Data, src)
	tail := f.Data[n:]
	for i := range tail {
		tail[i] = 0
	}
	ent.Pending = false
	ent.Perms = perms
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EACCEPTCOPY)
	c.m.Inc(metrics.CntEACCEPTCOPY)
	return nil
}

// EMODPR restricts an enclave page's EPCM permissions; the enclave must
// EACCEPT. It is the first step of the SGXv2 software eviction path
// (paper §6: "we first set it to read-only with EMODPR and EACCEPT").
func (c *CPU) EMODPR(e *Enclave, va mmu.VAddr, pfn mmu.PFN, perms mmu.Perms) error {
	if err := c.requirePrivileged("EMODPR"); err != nil {
		return err
	}
	ent, errE := c.epcmFor(e, va, pfn)
	if errE != nil {
		return errE
	}
	if perms&^ent.Perms != 0 {
		return fmt.Errorf("%w: EMODPR cannot extend permissions", ErrEPCMConflict)
	}
	ent.Perms = perms
	ent.PR = true
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EMODPR)
	c.m.Inc(metrics.CntEMODPR)
	return nil
}

// EMODT changes an enclave page's type (to TRIM for deallocation); the
// enclave must EACCEPT, after which the OS may EREMOVE.
func (c *CPU) EMODT(e *Enclave, va mmu.VAddr, pfn mmu.PFN, typ PageType) error {
	if err := c.requirePrivileged("EMODT"); err != nil {
		return err
	}
	ent, errE := c.epcmFor(e, va, pfn)
	if errE != nil {
		return errE
	}
	if typ != PTTrim {
		return fmt.Errorf("%w: EMODT to %s unsupported", ErrEPCMConflict, typ)
	}
	ent.Type = typ
	ent.Modified = true
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EMODT)
	c.m.Inc(metrics.CntEMODT)
	return nil
}

// EREMOVE frees an EPC frame. For a live enclave the page must have been
// trimmed (EMODT to TRIM, EACCEPTed); pages of an uninitialized or dead
// enclave can be removed unconditionally.
func (c *CPU) EREMOVE(e *Enclave, va mmu.VAddr, pfn mmu.PFN) error {
	if err := c.requirePrivileged("EREMOVE"); err != nil {
		return err
	}
	ent, errE := c.epcmFor(e, va, pfn)
	if errE != nil {
		return errE
	}
	dead, _, _ := e.Dead()
	if e.initialized && !dead {
		if ent.Type != PTTrim || ent.Modified {
			return fmt.Errorf("%w: EREMOVE of un-trimmed page %s", ErrEPCMConflict, va)
		}
	}
	c.EPC.Free(pfn)
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EREMOVE)
	c.m.Inc(metrics.CntEREMOVE)
	return nil
}

// Sealer exposes the enclave's sealing identity to its trusted runtime for
// the SGXv2 software paging path (modelling EGETKEY). Untrusted code must
// not call it; the model relies on package discipline, as the runtime and
// OS live in separate packages.
func (e *Enclave) Sealer() *pagestore.Sealer { return e.sealer }
