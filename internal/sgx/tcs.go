package sgx

import "autarky/internal/mmu"

// ExitInfo describes the exception that caused an AEX, as recorded in the
// SSA frame. Only the trusted enclave can read it; the OS sees a masked
// view (paper §5.1.2).
type ExitInfo struct {
	Valid bool
	Fault mmu.Fault // the unmasked fault
}

// SSAFrame is one state-save-area frame. Register state is abstracted: the
// simulator resumes execution by retrying the faulting access, so only the
// exception information needs to be architecturally visible.
type SSAFrame struct {
	Exit ExitInfo
}

// TCS is a thread control structure: the per-thread enclave entry state,
// including the SSA stack and — new in Autarky — the pending-exception flag
// (paper §5.1.3).
type TCS struct {
	ID uint64

	// NSSA is the number of SSA frames provisioned; an AEX that would
	// exceed it renders the enclave un-executable on this TCS.
	NSSA int

	// cssa is the current SSA index (number of frames pushed).
	cssa int
	ssa  []SSAFrame

	// pendingException is Autarky's new TCS flag: set by AEX on a page
	// fault, cleared by EENTER, checked by ERESUME.
	pendingException bool

	// busy marks a TCS with a logical processor inside it.
	busy bool

	// inEnclaveResumed is a model flag: the handler resumed the faulting
	// context itself (AttrInEnclaveResume / AttrElideAEX paths), so the
	// normal EEXIT+ERESUME epilogue must be skipped.
	inEnclaveResumed bool
}

// NewTCS returns a TCS with nssa state-save frames.
func NewTCS(id uint64, nssa int) *TCS {
	if nssa < 1 {
		panic("sgx: TCS needs at least one SSA frame")
	}
	return &TCS{ID: id, NSSA: nssa, ssa: make([]SSAFrame, nssa)}
}

// CSSA reports the current SSA index (pushed frames).
func (t *TCS) CSSA() int { return t.cssa }

// PendingException reports the Autarky pending-exception flag.
func (t *TCS) PendingException() bool { return t.pendingException }

// pushSSA records an exception and advances CSSA. It returns
// ErrSSAExhausted when no frame is free.
func (t *TCS) pushSSA(f mmu.Fault) error {
	return t.pushFrame(SSAFrame{Exit: ExitInfo{Valid: true, Fault: f}})
}

// pushFrame pushes a raw SSA frame (timer interrupts push a frame with no
// exception info).
func (t *TCS) pushFrame(fr SSAFrame) error {
	if t.cssa >= t.NSSA {
		return ErrSSAExhausted
	}
	t.ssa[t.cssa] = fr
	t.cssa++
	return nil
}

// popSSA discards the top frame (ERESUME side).
func (t *TCS) popSSA() {
	if t.cssa == 0 {
		panic("sgx: popSSA on empty SSA stack")
	}
	t.cssa--
	t.ssa[t.cssa] = SSAFrame{}
}

// TopSSA returns the most recently pushed frame. The trusted runtime reads
// it from its entry point to learn the true fault details. ok is false when
// no exception is pending in the SSA.
func (t *TCS) TopSSA() (SSAFrame, bool) {
	if t.cssa == 0 {
		return SSAFrame{}, false
	}
	return t.ssa[t.cssa-1], true
}
