package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"autarky/internal/sim"
)

// This file models the platform half of live enclave migration: a sealed,
// freshness-protected state envelope that one machine produces at quiesce
// and another consumes at adopt, plus the monotonic-counter service that
// prevents an old envelope from ever being adopted twice. The design
// follows "Migrating SGX Enclaves with Persistent State" (Alder et al.):
// sealed state handoff keyed off the platform secret, a per-identity
// freshness counter held by a service both machines trust, and the source
// enclave retired so the handoff is a move, never a fork.
//
// Envelope framing (everything after the nonce is authenticated):
//
//	nonce(12) || epoch(8) || measurement(32) || ciphertext
//
// The epoch and source measurement ride in the clear — the counter service
// and the destination must read them before decrypting — but they are bound
// into the AEAD's additional data, so tampering with either voids the seal.

// ErrStaleMigration is returned when a migration envelope's freshness epoch
// is not strictly newer than the last epoch the counter service committed
// for that enclave identity: the envelope was already adopted (a replayed
// handoff would fork the enclave) or superseded by a later quiesce.
var ErrStaleMigration = errors.New("sgx: migration envelope is stale (freshness epoch already consumed)")

// migrationLabel separates the migration sealing key from the checkpoint
// and page sealing keys derived from the same root secret.
const migrationLabel = "autarky-migration-v1"

// migHeaderLen is the envelope prefix: nonce, epoch, source measurement.
const migHeaderLen = 12 + 8 + 32

// migrationAEAD derives (once) and caches the platform's migration sealing
// key. Unlike the checkpoint key this one is cached on the CPU: sealing sits
// on the quiesce hot path and must not allocate per call.
func (c *CPU) migrationAEAD() (cipher.AEAD, error) {
	if c.migAEAD != nil {
		return c.migAEAD, nil
	}
	h := sha256.New()
	h.Write(c.rootSecret)
	h.Write([]byte(migrationLabel))
	block, err := aes.NewCipher(h.Sum(nil)[:16])
	if err != nil {
		return nil, fmt.Errorf("sgx: deriving migration key: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	c.migAEAD = aead
	return aead, nil
}

// migrationAAD assembles the additional data binding an envelope's clear
// header to its ciphertext, into the CPU's reused scratch.
func (c *CPU) migrationAAD(epoch uint64, meas [32]byte) []byte {
	aad := c.migAAD[:0]
	aad = append(aad, migrationLabel...)
	aad = binary.LittleEndian.AppendUint64(aad, epoch)
	aad = append(aad, meas[:]...)
	c.migAAD = aad
	return aad
}

// SealMigrationAppend seals a quiesced enclave's captured state into a
// migration envelope appended to dst, charging the software encryption cost
// per covered page. epoch is the envelope's freshness counter (the source
// enclave's migration epoch plus one) and meas the source measurement; both
// are carried in the clear but authenticated. The append-style contract and
// the cached AEAD keep the quiesce hot path allocation-free when dst has
// capacity.
func (c *CPU) SealMigrationAppend(dst []byte, epoch uint64, meas [32]byte, payload []byte) ([]byte, error) {
	aead, err := c.migrationAEAD()
	if err != nil {
		return nil, err
	}
	c.migrationSeq++
	// The migration key is shared by every machine derived from the same
	// root secret, so the nonce mixes this platform's boot salt with its
	// local sequence: two machines sealing concurrently never collide.
	start := len(dst)
	dst = append(dst, make([]byte, 12)...)
	nonce := dst[start : start+12]
	binary.LittleEndian.PutUint64(nonce[:8], c.migrationSeq)
	binary.LittleEndian.PutUint32(nonce[8:12], uint32(c.instanceSalt))
	dst = binary.LittleEndian.AppendUint64(dst, epoch)
	dst = append(dst, meas[:]...)
	c.Clock.ChargeAs(sim.CatCrypto, pagesOf(len(payload))*c.Costs.SWEncryptPage)
	return aead.Seal(dst, nonce, payload, c.migrationAAD(epoch, meas)), nil
}

// OpenMigration authenticates and decrypts a migration envelope, returning
// its freshness epoch, the source measurement and the plaintext state. Any
// structural defect — truncation, tampering with the clear header or the
// ciphertext — fails with ErrBadCheckpoint; freshness is the counter
// service's job, not this routine's.
func (c *CPU) OpenMigration(sealed []byte) (epoch uint64, meas [32]byte, plain []byte, err error) {
	aead, aerr := c.migrationAEAD()
	if aerr != nil {
		return 0, meas, nil, aerr
	}
	if len(sealed) < migHeaderLen+aead.Overhead() {
		return 0, meas, nil, fmt.Errorf("%w: %d bytes is shorter than any migration envelope",
			ErrBadCheckpoint, len(sealed))
	}
	nonce := sealed[:12]
	epoch = binary.LittleEndian.Uint64(sealed[12:20])
	copy(meas[:], sealed[20:migHeaderLen])
	c.Clock.ChargeAs(sim.CatCrypto, pagesOf(len(sealed)-migHeaderLen)*c.Costs.SWDecryptPage)
	plain, err = aead.Open(nil, nonce, sealed[migHeaderLen:], c.migrationAAD(epoch, meas))
	if err != nil {
		return 0, meas, nil, fmt.Errorf("%w: envelope failed authentication", ErrBadCheckpoint)
	}
	return epoch, meas, plain, nil
}

// RetireEnclave marks a quiesced enclave dead with the migration reason: its
// sealed state has been handed off, so this incarnation must never run again
// (resuming it would fork the enclave). Like every deliberate termination it
// is permanent; unlike CPU.Terminate it is invoked from outside enclave
// mode, after the final state capture has returned.
func (c *CPU) RetireEnclave(e *Enclave) {
	if c.cur != nil {
		panic("sgx: RetireEnclave while in enclave mode")
	}
	e.terminate(TerminateMigrated, "state sealed and handed off for migration")
}

// CounterService is the freshness authority of the migration protocol (the
// Alder et al. counter service): a monotonic counter per enclave identity,
// trusted by every machine in the deployment. Verify admits an envelope only
// if its epoch is strictly newer than the last committed one; Commit burns
// the epoch once the adopt succeeds. One service shared across a fleet
// closes the cross-machine replay window that per-machine state cannot see.
type CounterService struct {
	committed map[[32]byte]uint64
}

// NewCounterService returns an empty freshness authority.
func NewCounterService() *CounterService {
	return &CounterService{committed: make(map[[32]byte]uint64)}
}

// Verify checks that epoch is strictly newer than the last committed epoch
// for the identity, failing with ErrStaleMigration otherwise. It does not
// advance the counter — a failed adopt must not burn the envelope.
func (s *CounterService) Verify(meas [32]byte, epoch uint64) error {
	if last, ok := s.committed[meas]; ok && epoch <= last {
		return fmt.Errorf("%w: epoch %d, counter already at %d", ErrStaleMigration, epoch, last)
	}
	if epoch == 0 {
		return fmt.Errorf("%w: epoch 0 is never fresh", ErrStaleMigration)
	}
	return nil
}

// Commit records epoch as consumed for the identity. Called exactly once
// per successful adopt; committing a lower epoch than the current one is a
// protocol bug and panics.
func (s *CounterService) Commit(meas [32]byte, epoch uint64) {
	if last, ok := s.committed[meas]; ok && epoch <= last {
		panic("sgx: CounterService.Commit of a non-monotonic epoch")
	}
	s.committed[meas] = epoch
}

// Committed returns the last committed epoch for an identity (0 if none).
func (s *CounterService) Committed(meas [32]byte) uint64 { return s.committed[meas] }
