package sgx

import (
	"errors"
	"testing"

	"autarky/internal/mmu"
)

func TestEREPORTAndVerify(t *testing.T) {
	r := newRig(t)
	e, _ := r.buildEnclave(t, AttrSelfPaging, 1)
	q, err := r.cpu.EREPORT(e, []byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if q.Measurement != e.Measurement() || q.Attrs != e.Attrs {
		t.Fatal("quote fields wrong")
	}
	if err := r.cpu.VerifyQuote(q); err != nil {
		t.Fatalf("genuine quote rejected: %v", err)
	}
}

func TestForgedQuoteRejected(t *testing.T) {
	r := newRig(t)
	e, _ := r.buildEnclave(t, 0, 1)
	q, _ := r.cpu.EREPORT(e, nil)
	q.Attrs |= AttrSelfPaging // OS claims the defense is on
	if err := r.cpu.VerifyQuote(q); !errors.Is(err, ErrQuoteForged) {
		t.Fatalf("attribute-tampered quote accepted: %v", err)
	}
	q2, _ := r.cpu.EREPORT(e, nil)
	q2.ReportData[0] ^= 1
	if err := r.cpu.VerifyQuote(q2); !errors.Is(err, ErrQuoteForged) {
		t.Fatalf("data-tampered quote accepted: %v", err)
	}
}

func TestQuoteAcrossPlatformsRejected(t *testing.T) {
	r1 := newRig(t)
	e, _ := r1.buildEnclave(t, 0, 1)
	q, _ := r1.cpu.EREPORT(e, nil)
	r2 := newRig(t)
	r2.cpu.rootSecret = []byte("other-platform")
	if err := r2.cpu.VerifyQuote(q); !errors.Is(err, ErrQuoteForged) {
		t.Fatalf("cross-platform quote accepted: %v", err)
	}
}

func TestDeadEnclaveCannotQuote(t *testing.T) {
	r := newRig(t)
	e, tcs := r.buildEnclave(t, AttrSelfPaging, 1)
	r.onEntry = func(*TCS) { r.cpu.Terminate(TerminateAttackDetected, "x") }
	_ = r.cpu.EEnter(e, tcs)
	if _, err := r.cpu.EREPORT(e, nil); !errors.Is(err, ErrQuoteDead) {
		t.Fatalf("dead enclave quoted: %v", err)
	}
}

func TestUninitializedEnclaveCannotQuote(t *testing.T) {
	r := newRig(t)
	e, _ := r.cpu.ECREATE(rigBase, mmu.PageSize, 0)
	if _, err := r.cpu.EREPORT(e, nil); !errors.Is(err, ErrNotInitialized) {
		t.Fatalf("uninitialized enclave quoted: %v", err)
	}
}

func TestRestartMonitorFlagsStorm(t *testing.T) {
	// The §3 defense: the trusted party attests each restart and flags a
	// storm — bounding what a terminate-and-restart attacker can harvest.
	r := newRig(t)
	mon := NewRestartMonitor(r.cpu, 3)
	var measurement [32]byte
	for i := 0; i < 5; i++ {
		// Each "restart" is a fresh enclave with the identical image.
		rr := newRig(t)
		rr.cpu.rootSecret = r.cpu.rootSecret
		rr.cpu.nextEnclaveID = uint64(i * 100) // distinct instance IDs
		e, _ := rr.buildEnclave(t, AttrSelfPaging, 1)
		measurement = e.Measurement()
		q, err := rr.cpu.EREPORT(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		err = mon.Admit(q)
		if i < 3 && err != nil {
			t.Fatalf("restart %d rejected: %v", i, err)
		}
		if i >= 3 && !errors.Is(err, ErrRestartStorm) {
			t.Fatalf("restart %d not flagged: %v", i, err)
		}
	}
	if mon.Restarts(measurement) != 5 {
		t.Fatalf("Restarts = %d", mon.Restarts(measurement))
	}
}

func TestRestartMonitorCountsInstancesNotQuotes(t *testing.T) {
	r := newRig(t)
	mon := NewRestartMonitor(r.cpu, 2)
	e, _ := r.buildEnclave(t, 0, 1)
	// Re-attesting the same live instance many times is not a restart.
	for i := 0; i < 10; i++ {
		q, _ := r.cpu.EREPORT(e, []byte{byte(i)})
		if err := mon.Admit(q); err != nil {
			t.Fatalf("re-attestation %d flagged: %v", i, err)
		}
	}
	if mon.Restarts(e.Measurement()) != 1 {
		t.Fatalf("Restarts = %d, want 1", mon.Restarts(e.Measurement()))
	}
}

func TestRestartMonitorRejectsForgedQuotes(t *testing.T) {
	r := newRig(t)
	mon := NewRestartMonitor(r.cpu, 2)
	e, _ := r.buildEnclave(t, 0, 1)
	q, _ := r.cpu.EREPORT(e, nil)
	q.EnclaveID = 999 // OS fakes a different instance
	if err := mon.Admit(q); !errors.Is(err, ErrQuoteForged) {
		t.Fatalf("forged instance admitted: %v", err)
	}
}
