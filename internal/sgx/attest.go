package sgx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// This file models SGX remote attestation to the extent the paper relies on
// it (§3): enclave restarts — the residue of Autarky's terminate-on-attack
// policy — must be detectable by a trusted party, "for example, the enclave
// could perform remote attestation at startup … users or trusted services
// could detect unusually frequent restarts."
//
// Quotes are MACed with a key derived from the platform root secret
// (modelling the EPID/DCAP signing chain): the OS can observe quotes but
// cannot forge them.

// Quote is an attestation statement: this measurement, with these
// attributes, runs as this enclave instance on this platform. The
// (Platform, EnclaveID) pair identifies the instance: a restart — on the
// same machine or any other — produces a fresh pair.
type Quote struct {
	Measurement [32]byte
	Attrs       Attributes
	Platform    uint64 // per-boot platform instance tag (quoting-enclave state)
	EnclaveID   uint64
	ReportData  [64]byte
	mac         [32]byte
}

// Attestation errors.
var (
	// ErrQuoteForged indicates a quote that does not verify under the
	// platform key.
	ErrQuoteForged = errors.New("sgx: quote MAC invalid")
	// ErrQuoteDead indicates a quote requested from a terminated enclave.
	ErrQuoteDead = errors.New("sgx: cannot quote a terminated enclave")
)

func (c *CPU) quoteKey() []byte {
	h := sha256.New()
	h.Write([]byte("sgx-quoting-key"))
	h.Write(c.rootSecret)
	return h.Sum(nil)
}

func quoteMAC(key []byte, q *Quote) [32]byte {
	m := hmac.New(sha256.New, key)
	m.Write(q.Measurement[:])
	var b [24]byte
	binary.LittleEndian.PutUint64(b[0:8], uint64(q.Attrs))
	binary.LittleEndian.PutUint64(b[8:16], q.Platform)
	binary.LittleEndian.PutUint64(b[16:24], q.EnclaveID)
	m.Write(b[:])
	m.Write(q.ReportData[:])
	var out [32]byte
	copy(out[:], m.Sum(nil))
	return out
}

// EREPORT produces a quote for an initialized, live enclave, binding the
// caller-supplied report data (e.g. a key-exchange nonce). The model folds
// the EREPORT→quoting-enclave chain into one step.
func (c *CPU) EREPORT(e *Enclave, reportData []byte) (Quote, error) {
	if !e.initialized {
		return Quote{}, ErrNotInitialized
	}
	if dead, reason, detail := e.Dead(); dead {
		return Quote{}, fmt.Errorf("%w (%s: %s)", ErrQuoteDead, reason, detail)
	}
	q := Quote{
		Measurement: e.Measurement(),
		Attrs:       e.Attrs,
		Platform:    c.instanceSalt,
		EnclaveID:   e.ID,
	}
	copy(q.ReportData[:], reportData)
	q.mac = quoteMAC(c.quoteKey(), &q)
	return q, nil
}

// VerifyQuote checks a quote's authenticity against the platform.
func (c *CPU) VerifyQuote(q Quote) error {
	want := quoteMAC(c.quoteKey(), &q)
	if !hmac.Equal(want[:], q.mac[:]) {
		return ErrQuoteForged
	}
	return nil
}

// RestartMonitor is the trusted relying party of §3: it attests each
// instance of a service enclave at startup and flags unusually frequent
// restarts — the defense against an attacker harvesting one termination's
// worth of leakage per restart.
type RestartMonitor struct {
	cpu *CPU
	// MaxRestarts is the number of distinct instances of the same
	// measurement the monitor tolerates before flagging.
	MaxRestarts int

	instances map[[32]byte]map[[2]uint64]struct{}
}

// ErrRestartStorm is returned when a measurement exceeds its restart budget.
var ErrRestartStorm = errors.New("sgx: unusually frequent enclave restarts (possible termination-attack harvesting)")

// NewRestartMonitor builds a monitor allowing maxRestarts instances per
// measurement.
func NewRestartMonitor(cpu *CPU, maxRestarts int) *RestartMonitor {
	return &RestartMonitor{
		cpu:         cpu,
		MaxRestarts: maxRestarts,
		instances:   make(map[[32]byte]map[[2]uint64]struct{}),
	}
}

// Admit verifies the instance's startup quote and counts it. It returns
// ErrRestartStorm once restarts of the same measurement exceed the budget,
// and ErrQuoteForged for quotes the platform did not sign.
func (m *RestartMonitor) Admit(q Quote) error {
	if err := m.cpu.VerifyQuote(q); err != nil {
		return err
	}
	set := m.instances[q.Measurement]
	if set == nil {
		set = make(map[[2]uint64]struct{})
		m.instances[q.Measurement] = set
	}
	set[[2]uint64{q.Platform, q.EnclaveID}] = struct{}{}
	if len(set) > m.MaxRestarts {
		return fmt.Errorf("%w: %d instances of %x", ErrRestartStorm, len(set), q.Measurement[:4])
	}
	return nil
}

// Restarts reports how many distinct instances of a measurement have been
// admitted.
func (m *RestartMonitor) Restarts(measurement [32]byte) int {
	return len(m.instances[measurement])
}
