package sgx

import (
	"fmt"

	"autarky/internal/mmu"
)

// RegularMemory models untrusted DRAM outside the EPC: the pool the OS maps
// for ordinary application pages, exitless-call buffers and the encrypted
// backing store. Frames are allocated lazily.
type RegularMemory struct {
	base   mmu.PFN
	next   mmu.PFN
	frames map[mmu.PFN][]byte
	free   []mmu.PFN
}

// NewRegularMemory returns a pool whose PFNs start at base. The base must
// not overlap the EPC range; the standard machine wiring places regular
// memory far above it.
func NewRegularMemory(base mmu.PFN) *RegularMemory {
	if base == mmu.NoPFN {
		panic("sgx: regular memory base must be non-zero")
	}
	return &RegularMemory{base: base, next: base, frames: make(map[mmu.PFN][]byte)}
}

// Alloc returns a zeroed frame.
func (m *RegularMemory) Alloc() mmu.PFN {
	if n := len(m.free); n > 0 {
		pfn := m.free[n-1]
		m.free = m.free[:n-1]
		data := m.frames[pfn]
		for i := range data {
			data[i] = 0
		}
		return pfn
	}
	pfn := m.next
	m.next++
	m.frames[pfn] = make([]byte, mmu.PageSize)
	return pfn
}

// Free returns a frame to the pool.
func (m *RegularMemory) Free(pfn mmu.PFN) {
	if _, ok := m.frames[pfn]; !ok {
		panic(fmt.Sprintf("sgx: freeing unknown regular frame %d", pfn))
	}
	m.free = append(m.free, pfn)
}

// Contains reports whether pfn belongs to this pool.
func (m *RegularMemory) Contains(pfn mmu.PFN) bool {
	_, ok := m.frames[pfn]
	return ok
}

// Data returns the frame contents.
func (m *RegularMemory) Data(pfn mmu.PFN) []byte {
	d, ok := m.frames[pfn]
	if !ok {
		panic(fmt.Sprintf("sgx: access to unmapped regular frame %d", pfn))
	}
	return d
}

// Allocated reports the number of live frames.
func (m *RegularMemory) Allocated() int { return len(m.frames) - len(m.free) }
