package sgx

import (
	"errors"
	"testing"
	"testing/quick"

	"autarky/internal/mmu"
	"autarky/internal/sim"
)

// This file property-tests the pending-exception protocol (§5.1.3), the
// core of the defense: across randomized adversarial OS strategies, there
// is NO interleaving of OS actions that resumes a self-paging enclave past
// an enclave-region page fault without first entering the trusted handler.

// chaosOS is a randomized adversarial fault handler: on each fault it
// performs a random sequence of actions (resume attempts, PTE repairs,
// spurious entries) and records whether a silent resume ever succeeded
// before the trusted handler ran.
type chaosOS struct {
	rig *testRig
	rng *sim.Rand

	target mmu.VAddr

	// handlerRan is set by the enclave runtime when its exception path runs.
	handlerRan bool
	// silentResume records a successful ERESUME before handlerRan.
	silentResume bool
	// gaveUp aborts strategies that never repair the page.
	gaveUp bool
}

func (c *chaosOS) HandlePageFault(cpu *CPU, e *Enclave, tcs *TCS, f *mmu.Fault) error {
	for step := 0; step < 40; step++ {
		switch c.rng.Intn(6) {
		case 0, 1: // try the silent resume
			err := cpu.ERESUME(e, tcs)
			if err == nil {
				if !c.handlerRan {
					c.silentResume = true
				}
				return nil
			}
			if !errors.Is(err, ErrPendingException) {
				return err
			}
		case 2: // repair the PTE (with A/D, as the driver would)
			c.rig.pt.SetAD(c.target, true)
			c.rig.pt.SetPresent(c.target, true)
		case 3: // break it again
			c.rig.pt.SetPresent(c.target, false)
			c.rig.tlb.Invalidate(c.target)
		case 4: // clear the A bit
			c.rig.pt.ClearAccessed(c.target)
			c.rig.tlb.Invalidate(c.target)
		case 5: // enter the enclave (legitimately runs the handler)
			c.rig.pt.SetAD(c.target, true)
			c.rig.pt.SetPresent(c.target, true)
			if err := cpu.EEnter(e, tcs); err != nil {
				return err
			}
			if err := cpu.ERESUME(e, tcs); err == nil {
				return nil
			} else if !errors.Is(err, ErrPendingException) {
				return err
			}
		}
	}
	// Strategy failed to make progress: repair and do the honest dance so
	// the run terminates.
	c.gaveUp = true
	c.rig.pt.SetAD(c.target, true)
	c.rig.pt.SetPresent(c.target, true)
	if err := cpu.EEnter(e, tcs); err != nil {
		return err
	}
	return cpu.ERESUME(e, tcs)
}

func (c *chaosOS) HandleTimer(cpu *CPU, e *Enclave, tcs *TCS) error {
	return cpu.ERESUME(e, tcs)
}

// chaosRuntime marks handler entries; it does not terminate (the property
// under test is the hardware protocol, not the runtime policy).
type chaosRuntime struct {
	c   *chaosOS
	app func()
}

func (r *chaosRuntime) OnEntry(tcs *TCS) {
	if tcs.CSSA() > 0 {
		if frame, ok := tcs.TopSSA(); ok && frame.Exit.Valid {
			r.c.handlerRan = true
		}
		return
	}
	if r.app != nil {
		f := r.app
		r.app = nil
		f()
	}
}

func TestNoSilentResumePropertyUnderChaosOS(t *testing.T) {
	check := func(seed uint64) bool {
		rig := newRig(t)
		chaos := &chaosOS{rig: rig, rng: sim.NewRand(seed)}
		rig.cpu.OS = chaos

		e, err := rig.cpu.ECREATE(rigBase, 2*mmu.PageSize, AttrSelfPaging)
		if err != nil {
			t.Fatal(err)
		}
		rt := &chaosRuntime{c: chaos}
		e.Runtime = rt
		for i := 0; i < 2; i++ {
			va := rigBase + mmu.VAddr(i*mmu.PageSize)
			pfn, err := rig.cpu.EADD(e, va, nil, mmu.PermRW, PTReg)
			if err != nil {
				t.Fatal(err)
			}
			rig.pt.MapAD(va, pfn, mmu.PermRW, true, true, true)
		}
		tcs, err := rig.cpu.AddTCS(e, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := rig.cpu.EINIT(e); err != nil {
			t.Fatal(err)
		}

		target := rigBase + mmu.PageSize
		chaos.target = target
		var accessErr error
		rt.app = func() {
			// The OS breaks the page mid-run; the victim then accesses it.
			rig.pt.SetPresent(target, false)
			rig.tlb.Invalidate(target)
			accessErr = rig.cpu.Touch(target, mmu.AccessRead)
		}
		if err := rig.cpu.EEnter(e, tcs); err != nil {
			return false
		}
		if accessErr != nil {
			return false
		}
		// THE PROPERTY: the access only ever completes after the trusted
		// handler ran; no strategy achieved a silent resume.
		if chaos.silentResume {
			t.Logf("seed %d: silent resume succeeded", seed)
			return false
		}
		if !chaos.handlerRan {
			t.Logf("seed %d: access completed without the handler running", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestLegacyEnclaveAllowsSilentResumeUnderChaosOS(t *testing.T) {
	// The control: the same adversary against a legacy enclave succeeds
	// silently (that asymmetry IS the paper).
	rig := newRig(t)
	chaos := &chaosOS{rig: rig, rng: sim.NewRand(7)}
	rig.cpu.OS = chaos

	e, err := rig.cpu.ECREATE(rigBase, 2*mmu.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt := &chaosRuntime{c: chaos}
	e.Runtime = rt
	for i := 0; i < 2; i++ {
		va := rigBase + mmu.VAddr(i*mmu.PageSize)
		pfn, _ := rig.cpu.EADD(e, va, nil, mmu.PermRW, PTReg)
		rig.pt.Map(va, pfn, mmu.PermRW, true)
	}
	tcs, _ := rig.cpu.AddTCS(e, 8)
	if err := rig.cpu.EINIT(e); err != nil {
		t.Fatal(err)
	}
	target := rigBase + mmu.PageSize
	chaos.target = target
	rt.app = func() {
		rig.pt.SetPresent(target, false)
		rig.tlb.Invalidate(target)
		if err := rig.cpu.Touch(target, mmu.AccessRead); err != nil {
			t.Errorf("access: %v", err)
		}
	}
	if err := rig.cpu.EEnter(e, tcs); err != nil {
		t.Fatal(err)
	}
	if !chaos.silentResume {
		t.Fatal("legacy enclave blocked the silent resume?!")
	}
	// (The adversary may also have chosen to EENTER at some point — legal on
	// legacy SGX too — but the silent resume is what the attack needs, and
	// nothing forced the handler to run before it.)
}
