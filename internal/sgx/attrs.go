// Package sgx is an instruction-level architectural model of Intel SGX
// memory management, extended with the Autarky ISA changes (paper §5.1).
//
// The model covers the structures and instruction flows that the
// controlled-channel attack and its defense depend on:
//
//   - the enclave page cache (EPC) and EPC map (EPCM), with the extra
//     translation checks applied on TLB misses in enclave mode;
//   - enclave entry/exit (EENTER, EEXIT), asynchronous exits (AEX) with
//     state-save-area (SSA) frames, and ERESUME;
//   - OS-driven demand paging (EBLOCK, ETRACK, EWB, ELDU) with sealed,
//     versioned page blobs;
//   - SGXv2 dynamic memory management (EAUG, EACCEPT, EACCEPTCOPY, EMODPR,
//     EMODT, EREMOVE);
//   - the Autarky additions, gated on an attested enclave attribute:
//     full fault-address masking, the per-TCS pending-exception flag, the
//     accessed/dirty-bits-must-be-set rule, and the optional AEX-eliding
//     and in-enclave-resume optimizations.
//
// Anything the OS does (mapping pages, injecting faults, clearing A/D bits)
// goes through internal/mmu structures it fully controls; everything here
// models what the trusted hardware enforces on top.
package sgx

import (
	"errors"

	"autarky/internal/pagestore"
)

// Attributes is the enclave attribute word. It is part of the enclave's
// measured identity: flipping a bit changes the measurement, so a relying
// party can require self-paging mode at attestation time (paper §5.1.1).
type Attributes uint64

const (
	// AttrSGX2 enables the SGXv2 dynamic memory-management instructions.
	AttrSGX2 Attributes = 1 << iota
	// AttrSelfPaging is Autarky's new attribute bit: it enables fault
	// masking, the pending-exception protocol and the A/D-bit rule.
	AttrSelfPaging
	// AttrElideAEX is the paper's more intrusive optional optimization
	// (§5.1.3 "Eliding AEX"): page faults inside a self-paging enclave stay
	// in enclave mode and vector directly to the enclave handler via a
	// simulated nested entry, skipping AEX, the OS handler and EENTER.
	AttrElideAEX
	// AttrInEnclaveResume models the proposed in-enclave ERESUME variant
	// (§5.1.3 "Resuming from exceptions"): the handler restores the faulting
	// context itself instead of EEXITing to a stub that ERESUMEs.
	AttrInEnclaveResume
)

// Has reports whether all bits of q are set in a.
func (a Attributes) Has(q Attributes) bool { return a&q == q }

// Errors surfaced by the SGX model. They correspond to architectural fault
// or failure conditions, not to Go-level misuse (which panics).
var (
	// ErrPendingException is returned by ERESUME when the TCS
	// pending-exception flag is set: the OS must re-enter the enclave
	// through its entry point first (paper §5.1.3).
	ErrPendingException = errors.New("sgx: ERESUME blocked by pending exception flag")
	// ErrEnclaveTerminated is returned once the trusted runtime has killed
	// the enclave (e.g. on attack detection); no instruction can revive it
	// short of recreating the enclave, which the threat model treats as a
	// detectable restart (paper §3).
	ErrEnclaveTerminated = errors.New("sgx: enclave terminated")
	// ErrNotInitialized is returned when entering an enclave before EINIT.
	ErrNotInitialized = errors.New("sgx: enclave not initialized")
	// ErrEPCFull is returned when no EPC frame is free.
	ErrEPCFull = errors.New("sgx: EPC full")
	// ErrEPCMConflict covers illegal EPCM state transitions (double-add,
	// evicting an unblocked page, accepting a non-pending page, ...).
	ErrEPCMConflict = errors.New("sgx: EPCM state conflict")
	// ErrNotTracked is returned by EWB when the eviction protocol was not
	// followed (EBLOCK + ETRACK + TLB shootdown).
	ErrNotTracked = errors.New("sgx: EWB without completed ETRACK epoch")
	// ErrTCSBusy is returned when entering a TCS that is already executing.
	ErrTCSBusy = errors.New("sgx: TCS busy")
	// ErrSSAExhausted is returned when an AEX cannot push a state-save
	// frame because the SSA stack is full; the enclave is un-executable
	// until frames are popped (paper §5.1.3 footnote).
	ErrSSAExhausted = errors.New("sgx: SSA stack exhausted")
	// ErrOutsideEnclave is returned for enclave-only operations attempted
	// outside enclave mode, and vice versa.
	ErrOutsideEnclave = errors.New("sgx: operation in wrong CPU mode")
	// ErrBadAddress is returned for addresses outside the enclave's ELRANGE
	// where one is required.
	ErrBadAddress = errors.New("sgx: address outside enclave range")
)

// ErrRateLimited is the one canonical rate-limit sentinel: the enclave's
// legitimate fault rate exceeded the configured bound (paper §5.2.4). The
// core policy layer and the public facade alias it rather than defining
// their own, and TerminationError unwraps to it, so errors.Is matches the
// condition at every layer. The message carries no package prefix because
// it predates this definition in internal/core and is part of rendered
// experiment output.
var ErrRateLimited = errors.New("fault rate bound exceeded")

// TerminationReason records why the trusted runtime killed its enclave.
type TerminationReason int

// Termination reasons, reported by the runtime and inspected by tests and
// the attack demos.
const (
	// TerminateNone means the enclave is alive.
	TerminateNone TerminationReason = iota
	// TerminateAttackDetected: an OS-induced fault on a page the runtime
	// believed resident (or an A/D-bit probe) was detected.
	TerminateAttackDetected
	// TerminateRateLimit: the legitimate fault rate exceeded the
	// user-configured bound (paper §5.2.4).
	TerminateRateLimit
	// TerminateIntegrity: a swapped-in page failed its
	// integrity/freshness check.
	TerminateIntegrity
	// TerminateUnavailable: the backing store stayed unavailable through
	// every recovery layer (retries exhausted, no fallback) — the enclave
	// cannot make progress without its evicted pages.
	TerminateUnavailable
	// TerminatePolicy: any other policy-initiated shutdown.
	TerminatePolicy
	// TerminateMigrated: the enclave's state was sealed and handed off to
	// another machine; this incarnation is retired so the migration is a
	// move, never a fork.
	TerminateMigrated
)

// String names the reason.
func (r TerminationReason) String() string {
	switch r {
	case TerminateNone:
		return "none"
	case TerminateAttackDetected:
		return "attack-detected"
	case TerminateRateLimit:
		return "fault-rate-limit"
	case TerminateIntegrity:
		return "integrity-violation"
	case TerminateUnavailable:
		return "backing-unavailable"
	case TerminatePolicy:
		return "policy"
	case TerminateMigrated:
		return "migrated"
	default:
		return "unknown"
	}
}

// TerminationError is the error the model returns to whoever was driving an
// enclave that its trusted runtime terminated.
type TerminationError struct {
	Reason TerminationReason
	Detail string
	// Cause, when non-nil, is the concrete error that triggered the
	// termination (a refined unseal failure, a blob-keyed batch error, an
	// exhausted retry budget). It preserves the full errors.Is chain through
	// the termination: a replay-induced kill still matches
	// pagestore.ErrStaleVersion, not just the ErrIntegrity class.
	Cause error
}

// Error implements the error interface.
func (e *TerminationError) Error() string {
	return "sgx: enclave terminated: " + e.Reason.String() + ": " + e.Detail
}

// Unwrap exposes the concrete cause when one was recorded; otherwise it
// maps the termination reason onto the matching condition sentinel. Either
// way errors.Is sees through a termination: a rate-limit termination
// matches ErrRateLimited (and the aliases of it in core and the facade), an
// integrity termination matches pagestore.ErrIntegrity, an availability
// termination matches pagestore.ErrUnavailable.
func (e *TerminationError) Unwrap() error {
	if e.Cause != nil {
		return e.Cause
	}
	switch e.Reason {
	case TerminateRateLimit:
		return ErrRateLimited
	case TerminateIntegrity:
		return pagestore.ErrIntegrity
	case TerminateUnavailable:
		return pagestore.ErrUnavailable
	default:
		return nil
	}
}
