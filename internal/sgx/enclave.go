package sgx

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/pagestore"
	"autarky/internal/sim"
)

// Runtime is the trusted software loaded at the enclave's attested entry
// point. EENTER vectors to OnEntry; the runtime dispatches on TCS.CSSA():
// zero means a fresh call (run the application), non-zero means an
// exception frame is on the SSA stack (run the fault handler).
//
// Autarky's self-paging runtime (internal/core) implements this interface.
type Runtime interface {
	OnEntry(tcs *TCS)
}

// Enclave is the trusted per-enclave state: the SECS fields the model
// needs, the measurement, the sealing identity and the paging version
// counters (modelling SGX's version-array pages).
type Enclave struct {
	ID   uint64
	Base mmu.VAddr // ELRANGE start (page aligned)
	Size uint64    // ELRANGE length in bytes (multiple of page size)

	Attrs Attributes

	// Runtime is the trusted entry-point dispatcher, set before EINIT.
	Runtime Runtime

	initialized bool
	// migrationEpoch is the freshness counter this incarnation resumed
	// from (0 if it never migrated); see migrate.go.
	migrationEpoch uint64
	dead           bool
	deadReason     TerminationReason
	deadDetail     string
	deadCause      error

	measuring   [32]byte // running measurement state (chained hashes)
	measurement [32]byte // final after EINIT

	sealer *pagestore.Sealer

	// sealBuf and openBuf are reusable scratch for EWB's sealed output and
	// ELDU's decrypted page: the paging loop seals and restores thousands of
	// pages, and each is consumed (stored / copied into EPC) before the next
	// call, so one buffer per direction suffices and the hot path allocates
	// nothing.
	sealBuf []byte
	openBuf []byte

	// versions holds the per-page eviction version counters, modelling the
	// trusted VA-page chain that gives EWB/ELDU replay protection.
	versions map[uint64]uint64 // vpn -> version

	// swappedPerms records the EPCM permissions of evicted pages so ELDU
	// restores them exactly (modelling the sealed PCMD metadata).
	swappedPerms map[uint64]mmu.Perms // vpn -> perms

	// trackEpoch advances on ETRACK; shootdownEpoch records the last epoch
	// for which the OS completed a TLB shootdown round.
	trackEpoch     uint64
	shootdownEpoch uint64

	tcss map[uint64]*TCS
}

// Contains reports whether va lies in the enclave's ELRANGE.
func (e *Enclave) Contains(va mmu.VAddr) bool {
	return va >= e.Base && uint64(va-e.Base) < e.Size
}

// Initialized reports whether EINIT has run.
func (e *Enclave) Initialized() bool { return e.initialized }

// Dead reports whether the trusted runtime terminated the enclave, and why.
func (e *Enclave) Dead() (bool, TerminationReason, string) {
	return e.dead, e.deadReason, e.deadDetail
}

// DeadCause returns the concrete error behind the termination, when the
// runtime recorded one (nil otherwise, and for live enclaves).
func (e *Enclave) DeadCause() error { return e.deadCause }

// terminationError builds the error a dead enclave returns on every entry
// attempt, preserving the recorded cause chain.
func (e *Enclave) terminationError() *TerminationError {
	return &TerminationError{Reason: e.deadReason, Detail: e.deadDetail, Cause: e.deadCause}
}

// Measurement returns the enclave's MRENCLAVE-like identity. It is only
// valid after EINIT.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// TCS returns the thread control structure with the given ID.
func (e *Enclave) TCS(id uint64) *TCS { return e.tcss[id] }

// Version returns the current anti-replay version for a page.
func (e *Enclave) Version(va mmu.VAddr) uint64 { return e.versions[va.VPN()] }

// Versions returns a copy of every per-page anti-replay counter
// (vpn -> version), the state a checkpoint must carry so the restored
// incarnation's chain stays monotonic.
func (e *Enclave) Versions() map[uint64]uint64 {
	out := make(map[uint64]uint64, len(e.versions))
	for vpn, v := range e.versions {
		out[vpn] = v
	}
	return out
}

// SeedVersions pre-loads the per-page anti-replay counters from a trusted
// checkpoint, so a restored enclave continues the version chain of its
// previous incarnation instead of restarting at zero. Only permitted before
// any page of the new incarnation has been evicted — seeding after that
// would break the monotonicity that gives the counters their anti-replay
// power.
func (e *Enclave) SeedVersions(versions map[uint64]uint64) {
	if len(e.versions) != 0 {
		panic("sgx: SeedVersions after eviction activity")
	}
	for vpn, v := range versions {
		e.versions[vpn] = v
	}
}

// MigrationEpoch returns the freshness counter this incarnation was adopted
// at (0 for an enclave that has never migrated). The next migration envelope
// sealed from this enclave carries MigrationEpoch()+1.
func (e *Enclave) MigrationEpoch() uint64 { return e.migrationEpoch }

// SeedMigrationEpoch records the freshness counter an adopted incarnation
// resumed from. Like SeedVersions it is load-time state: seeding after EINIT
// would let a running enclave rewrite its own migration history.
func (e *Enclave) SeedMigrationEpoch(epoch uint64) {
	if e.initialized {
		panic("sgx: SeedMigrationEpoch after EINIT")
	}
	e.migrationEpoch = epoch
}

// VersionVPNs appends the VPNs that currently carry an anti-replay version
// to dst and returns it, letting a caller snapshot the version set without
// allocating a map copy. Order is map order; callers needing determinism
// sort the result.
func (e *Enclave) VersionVPNs(dst []uint64) []uint64 {
	for vpn := range e.versions {
		dst = append(dst, vpn)
	}
	return dst
}

// SelfPaging reports whether the Autarky attribute is set.
func (e *Enclave) SelfPaging() bool { return e.Attrs.Has(AttrSelfPaging) }

func (e *Enclave) extendMeasurement(tag string, data []byte) {
	h := sha256.New()
	h.Write(e.measuring[:])
	h.Write([]byte(tag))
	h.Write(data)
	copy(e.measuring[:], h.Sum(nil))
}

// Terminate marks the enclave dead. Only the trusted runtime (via
// CPU.Terminate) and EINIT-failure paths use it.
func (e *Enclave) terminate(reason TerminationReason, detail string) {
	e.terminateCause(reason, detail, nil)
}

// terminateCause marks the enclave dead, recording the concrete error that
// triggered the shutdown so later entry attempts surface the full chain.
func (e *Enclave) terminateCause(reason TerminationReason, detail string, cause error) {
	if e.dead {
		return
	}
	e.dead = true
	e.deadReason = reason
	e.deadDetail = detail
	e.deadCause = cause
}

// ECREATE creates an enclave covering [base, base+size) with the given
// attributes, allocating its identity from the CPU's enclave-ID counter.
// It is the first step of the build flow ECREATE → EADD* → EINIT.
func (c *CPU) ECREATE(base mmu.VAddr, size uint64, attrs Attributes) (*Enclave, error) {
	if base.Offset() != 0 || size == 0 || size%mmu.PageSize != 0 {
		return nil, fmt.Errorf("%w: ELRANGE %s+%d not page aligned", ErrBadAddress, base, size)
	}
	c.nextEnclaveID++
	e := &Enclave{
		ID:       c.nextEnclaveID,
		Base:     base,
		Size:     size,
		Attrs:    attrs,
		versions: make(map[uint64]uint64),
		tcss:     make(map[uint64]*TCS),
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(base))
	binary.LittleEndian.PutUint64(hdr[8:16], size)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(attrs))
	e.extendMeasurement("ECREATE", hdr[:])
	sealer, err := pagestore.NewSealer(c.rootSecret, e.ID)
	if err != nil {
		return nil, err
	}
	e.sealer = sealer
	c.enclaves[e.ID] = e
	return e, nil
}

// EADD populates one initial enclave page before EINIT: it allocates an EPC
// frame, copies content, sets the EPCM entry and extends the measurement.
// The caller (the OS loader) must also map va→pfn in the page table; the
// returned PFN is for that purpose.
func (c *CPU) EADD(e *Enclave, va mmu.VAddr, content []byte, perms mmu.Perms, typ PageType) (mmu.PFN, error) {
	if e.initialized {
		return mmu.NoPFN, fmt.Errorf("%w: EADD after EINIT", ErrEPCMConflict)
	}
	if !e.Contains(va) || va.Offset() != 0 {
		return mmu.NoPFN, fmt.Errorf("%w: EADD at %s", ErrBadAddress, va)
	}
	if len(content) > mmu.PageSize {
		return mmu.NoPFN, fmt.Errorf("sgx: EADD content %d bytes exceeds page", len(content))
	}
	pfn, err := c.EPC.Alloc()
	if err != nil {
		return mmu.NoPFN, err
	}
	f := c.EPC.Entry(pfn)
	copy(f.Data, content)
	f.EPCM = EPCMEntry{
		Valid:     true,
		Type:      typ,
		EnclaveID: e.ID,
		LinAddr:   va,
		Perms:     perms,
	}
	var meta [16]byte
	binary.LittleEndian.PutUint64(meta[0:8], uint64(va))
	binary.LittleEndian.PutUint64(meta[8:16], uint64(perms)|uint64(typ)<<32)
	e.extendMeasurement("EADD", meta[:])
	e.extendMeasurement("EEXTEND", f.Data)
	c.Clock.ChargeAs(sim.CatPaging, c.Costs.EAUG) // EADD cost ≈ EAUG in the model
	c.m.Inc(metrics.CntEADD)
	return pfn, nil
}

// AddTCS provisions a thread control structure with nssa SSA frames.
// Architecturally a TCS occupies an EPC page added with EADD; the model
// keeps the structure separate and measures its parameters.
func (c *CPU) AddTCS(e *Enclave, nssa int) (*TCS, error) {
	if e.initialized {
		return nil, fmt.Errorf("%w: AddTCS after EINIT", ErrEPCMConflict)
	}
	id := uint64(len(e.tcss) + 1)
	t := NewTCS(id, nssa)
	e.tcss[id] = t
	var meta [16]byte
	binary.LittleEndian.PutUint64(meta[0:8], id)
	binary.LittleEndian.PutUint64(meta[8:16], uint64(nssa))
	e.extendMeasurement("EADD-TCS", meta[:])
	return t, nil
}

// EINIT finalizes the measurement and makes the enclave executable.
func (c *CPU) EINIT(e *Enclave) error {
	if e.initialized {
		return fmt.Errorf("%w: double EINIT", ErrEPCMConflict)
	}
	if e.Runtime == nil {
		return fmt.Errorf("sgx: EINIT without a runtime entry point")
	}
	e.extendMeasurement("EINIT", nil)
	e.measurement = e.measuring
	e.initialized = true
	return nil
}
