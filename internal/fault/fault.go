// Package fault is the deterministic pathogen for the paging stack: a
// PagingBackend wrapper that injects the hostile-host behaviours of the
// paper's threat model (§3) — corrupted blobs, truncated blobs, stale-version
// replay, transient unavailability, latency spikes — under a seeded plan.
//
// Every injection decision is a pure function of (plan seed, clock cycle,
// enclave, page, operation): no wall clock, no global PRNG state, no
// iteration order. The same plan over the same call sequence injects exactly
// the same faults, so chaos experiments stay byte-identical at any worker
// count, and a failure found at one seed replays forever.
//
// Keying decisions on the clock cycle is what makes unavailability
// *transient*: a retry of the same fetch happens later (the retry layer
// charges backoff cycles), re-rolls the decision, and may now succeed —
// exactly the behaviour a flaky-but-recoverable backing store exhibits.
// Corruption, truncation and replay, by contrast, are invisible at this
// layer (blobs are opaque to backends); they are detected only by the
// sealing checks far above, so no amount of backend-level retry can mask
// them — which is precisely the recovery gap checkpoint/restore closes.
package fault

import (
	"fmt"

	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/pagestore"
	"autarky/internal/sim"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// KindNone means the operation proceeds untouched.
	KindNone Kind = iota
	// KindCorrupt flips ciphertext bits in the fetched blob.
	KindCorrupt
	// KindTruncate returns the fetched blob cut short.
	KindTruncate
	// KindReplay serves the oldest archived blob instead of the current one.
	KindReplay
	// KindUnavail refuses the operation with pagestore.ErrUnavailable.
	KindUnavail
	// KindDelay charges a latency spike, then proceeds normally.
	KindDelay
)

// String names the kind for error details and logs.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindCorrupt:
		return "corrupt"
	case KindTruncate:
		return "truncate"
	case KindReplay:
		return "replay"
	case KindUnavail:
		return "unavailable"
	case KindDelay:
		return "delay"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Plan is a deterministic fault schedule: per-operation injection
// probabilities plus the seed that fixes every decision. Probabilities are
// evaluated cumulatively in declaration order and at most one fault fires
// per operation, so their sum must stay within 1.
type Plan struct {
	Seed uint64 // decision seed; same seed + same call sequence = same faults

	PCorrupt  float64 // P(fetched blob comes back bit-flipped)
	PTruncate float64 // P(fetched blob comes back truncated)
	PReplay   float64 // P(fetch served an archived stale blob)
	PUnavail  float64 // P(operation refused with ErrUnavailable)
	PDelay    float64 // P(operation delayed by DelayCycles)

	DelayCycles uint64 // latency spike size; required when PDelay > 0

	// OutageCycles makes unavailability *sustained*: when an unavailability
	// fires, the backend stays unavailable for this many further cycles.
	// Zero keeps outages instantaneous (a single refused operation), which
	// per-operation retry absorbs; sustained outages outlive any bounded
	// backoff and are exactly what the degraded-mode fallback store exists
	// to survive.
	OutageCycles uint64
}

// Zero reports whether the plan injects nothing.
func (p Plan) Zero() bool {
	return p.PCorrupt == 0 && p.PTruncate == 0 && p.PReplay == 0 &&
		p.PUnavail == 0 && p.PDelay == 0
}

// Validate rejects malformed plans: probabilities outside [0,1], a
// cumulative mass above 1, or a delay probability without a delay size.
func (p Plan) Validate() error {
	sum := 0.0
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"PCorrupt", p.PCorrupt}, {"PTruncate", p.PTruncate},
		{"PReplay", p.PReplay}, {"PUnavail", p.PUnavail}, {"PDelay", p.PDelay},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s = %v, want within [0, 1]", pr.name, pr.v)
		}
		sum += pr.v
	}
	if sum > 1 {
		return fmt.Errorf("fault: probabilities sum to %v, want <= 1 (at most one fault per op)", sum)
	}
	if p.PDelay > 0 && p.DelayCycles == 0 {
		return fmt.Errorf("fault: PDelay = %v but DelayCycles = 0", p.PDelay)
	}
	if p.OutageCycles > 0 && p.PUnavail == 0 {
		return fmt.Errorf("fault: OutageCycles = %d with PUnavail = 0 (outages start from an unavailability)", p.OutageCycles)
	}
	return nil
}

// Operation codes mixed into the decision hash, so an evict and a fetch of
// the same page at the same cycle roll independently.
const (
	opEvict uint64 = 1
	opFetch uint64 = 2
)

// mix is a SplitMix64-style finalizer over the decision inputs. It is the
// plan's whole source of randomness: stateless, so injection depends only
// on the visible operation, never on how many faults fired before it.
func mix(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 29
		h *= 0x94d049bb133111eb
		h ^= h >> 32
	}
	return h
}

// Roll decides which fault (if any) hits one operation outside the paging
// stack. The service layer's frame channel reuses the plan's stateless
// decision function for its own traffic, keyed on (direction code, cycle,
// connection, correlation ID) instead of (paging op, cycle, enclave, page);
// op codes above the package's own (1, 2) keep the decision streams
// independent of the paging rolls.
func (p Plan) Roll(op, cycle, key1, key2 uint64) Kind {
	return p.roll(op, cycle, key1, key2)
}

// roll decides which fault (if any) hits one operation.
func (p Plan) roll(op, cycle, enclaveID, vpn uint64) Kind {
	if p.Zero() {
		return KindNone
	}
	u := float64(mix(p.Seed, op, cycle, enclaveID, vpn)>>11) / (1 << 53)
	// Cumulative bands in declaration order, unrolled: this runs on every
	// paging operation (and every service frame), so it must not build a
	// case table per call. Subtraction order matches the probabilities'
	// declaration order exactly — the float arithmetic, and therefore every
	// historical decision, is unchanged.
	if u < p.PCorrupt {
		return KindCorrupt
	}
	u -= p.PCorrupt
	if u < p.PTruncate {
		return KindTruncate
	}
	u -= p.PTruncate
	if u < p.PReplay {
		return KindReplay
	}
	u -= p.PReplay
	if u < p.PUnavail {
		return KindUnavail
	}
	u -= p.PUnavail
	if u < p.PDelay {
		return KindDelay
	}
	return KindNone
}

// Backend injects the plan's faults around any inner PagingBackend. It sits
// outermost in the stack — between the kernel driver and whatever
// cache/ORAM/store hierarchy is installed — so every kernel-visible paging
// operation is exposed, and recovery layers (retry, fallback) wrap *it*.
type Backend struct {
	inner pagestore.PagingBackend
	plan  Plan
	clock *sim.Clock
	meter *metrics.Metrics

	// history archives every blob evicted through this layer, in arrival
	// order — the attacker's copy of the traffic, used to serve replays.
	// Only maintained when the plan can actually replay (PReplay > 0): an
	// archive no decision ever reads is pure overhead.
	history map[faultKey][]pagestore.Blob

	// outageUntil is the cycle at which the current sustained outage ends
	// (see Plan.OutageCycles). It evolves deterministically from the call
	// sequence, so it preserves the replay guarantee.
	outageUntil uint64

	// kinds is per-call scratch for FetchBatch's rolled decisions.
	kinds []Kind
}

type faultKey struct {
	enclaveID uint64
	vpn       uint64
}

var _ pagestore.PagingBackend = (*Backend)(nil)

// NewBackend wraps inner with the plan's faults. The plan must validate.
func NewBackend(inner pagestore.PagingBackend, plan Plan, clock *sim.Clock) *Backend {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	return &Backend{
		inner:   inner,
		plan:    plan,
		clock:   clock,
		meter:   metrics.Of(clock),
		history: make(map[faultKey][]pagestore.Blob),
	}
}

// Name implements PagingBackend.
func (f *Backend) Name() string { return "fault+" + f.inner.Name() }

// Evict implements PagingBackend. Evictions face unavailability and delay;
// the stored blob itself is never altered on the way in (alterations are
// modelled on the fetch side, where the enclave observes them).
func (f *Backend) Evict(enclaveID uint64, va mmu.VAddr, b pagestore.Blob) error {
	switch f.decide(opEvict, enclaveID, va) {
	case KindUnavail:
		return &pagestore.BlobError{EnclaveID: enclaveID, VA: va, Op: "evict", Err: pagestore.ErrUnavailable}
	}
	f.archive(enclaveID, va, b)
	return f.inner.Evict(enclaveID, va, b)
}

// Fetch implements PagingBackend: the fault surface where the hostile host
// hands back something other than what it was given.
func (f *Backend) Fetch(enclaveID uint64, va mmu.VAddr) (pagestore.Blob, error) {
	kind := f.decide(opFetch, enclaveID, va)
	if kind == KindUnavail {
		return pagestore.Blob{}, &pagestore.BlobError{EnclaveID: enclaveID, VA: va, Op: "fetch", Err: pagestore.ErrUnavailable}
	}
	b, err := f.inner.Fetch(enclaveID, va)
	if err != nil {
		return pagestore.Blob{}, err
	}
	return f.mangle(kind, enclaveID, va, b), nil
}

// Drop implements PagingBackend. Drops pass through unfaulted: a discard
// the host ignores is invisible to the enclave (the archive keeps the blob
// anyway — that is what replay is).
func (f *Backend) Drop(enclaveID uint64, va mmu.VAddr) error {
	return f.inner.Drop(enclaveID, va)
}

// EvictBatch implements PagingBackend, rolling per blob; the first
// unavailable blob fails the batch with its key attached.
func (f *Backend) EvictBatch(enclaveID uint64, pages []pagestore.PageBlob) error {
	for _, pb := range pages {
		switch f.decide(opEvict, enclaveID, pb.VA) {
		case KindUnavail:
			return &pagestore.BlobError{EnclaveID: enclaveID, VA: pb.VA, Op: "evict", Err: pagestore.ErrUnavailable}
		}
		f.archive(enclaveID, pb.VA, pb.Blob)
	}
	return f.inner.EvictBatch(enclaveID, pages)
}

// FetchBatch implements PagingBackend, rolling per blob.
func (f *Backend) FetchBatch(enclaveID uint64, pages []mmu.VAddr, out []pagestore.Blob) error {
	kinds := f.kinds[:0]
	for _, va := range pages {
		kind := f.decide(opFetch, enclaveID, va)
		if kind == KindUnavail {
			return &pagestore.BlobError{EnclaveID: enclaveID, VA: va, Op: "fetch", Err: pagestore.ErrUnavailable}
		}
		kinds = append(kinds, kind)
	}
	f.kinds = kinds
	if err := f.inner.FetchBatch(enclaveID, pages, out); err != nil {
		return err
	}
	for i, va := range pages {
		out[i] = f.mangle(kinds[i], enclaveID, va, out[i])
	}
	return nil
}

// decide rolls one operation's fault and accounts for the kinds that are
// resolved before the inner call (delay charges here; unavailability is
// counted here and surfaced by the caller).
func (f *Backend) decide(op uint64, enclaveID uint64, va mmu.VAddr) Kind {
	cycle := f.clock.Cycles()
	if cycle < f.outageUntil {
		f.count(KindUnavail)
		return KindUnavail
	}
	kind := f.plan.roll(op, cycle, enclaveID, va.VPN())
	switch kind {
	case KindNone:
		return kind
	case KindDelay:
		f.count(KindDelay)
		f.clock.ChargeAs(sim.CatPaging, f.plan.DelayCycles)
		return KindNone // after the spike, the op proceeds untouched
	case KindUnavail:
		f.count(KindUnavail)
		if f.plan.OutageCycles > 0 {
			f.outageUntil = cycle + f.plan.OutageCycles
		}
	}
	return kind
}

// mangle applies a fetch-side blob fault. Corruption and truncation modify
// a copy (the underlying store keeps the pristine blob — the enclave just
// never sees it); replay swaps in the oldest archived blob when one exists.
func (f *Backend) mangle(kind Kind, enclaveID uint64, va mmu.VAddr, b pagestore.Blob) pagestore.Blob {
	switch kind {
	case KindCorrupt:
		if len(b.Ciphertext) == 0 {
			return b
		}
		f.count(KindCorrupt)
		ct := make([]byte, len(b.Ciphertext))
		copy(ct, b.Ciphertext)
		i := mix(f.plan.Seed, 0xc0, f.clock.Cycles(), enclaveID, va.VPN()) % uint64(len(ct))
		ct[i] ^= 0xff
		return pagestore.Blob{Ciphertext: ct, Version: b.Version, EnclaveID: b.EnclaveID}
	case KindTruncate:
		if len(b.Ciphertext) == 0 {
			return b
		}
		f.count(KindTruncate)
		cut := 1 + mix(f.plan.Seed, 0x7c, f.clock.Cycles(), enclaveID, va.VPN())%uint64(len(b.Ciphertext))
		return pagestore.Blob{Ciphertext: b.Ciphertext[:uint64(len(b.Ciphertext))-cut], Version: b.Version, EnclaveID: b.EnclaveID}
	case KindReplay:
		hist := f.history[faultKey{enclaveID, va.VPN()}]
		if len(hist) < 2 {
			return b // nothing older to replay; fault fizzles
		}
		f.count(KindReplay)
		return hist[0]
	}
	return b
}

// archive snapshots an evicted blob into the attacker's copy of the
// traffic. The snapshot copies the ciphertext — evict-side buffers belong
// to the caller only for the duration of the call — and is skipped entirely
// when the plan never replays: KindReplay is the only reader of the
// history, so an unreplayed archive is unobservable.
func (f *Backend) archive(enclaveID uint64, va mmu.VAddr, b pagestore.Blob) {
	if f.plan.PReplay == 0 {
		return
	}
	ct := make([]byte, len(b.Ciphertext))
	copy(ct, b.Ciphertext)
	b.Ciphertext = ct
	k := faultKey{enclaveID, va.VPN()}
	f.history[k] = append(f.history[k], b)
}

// count bumps the per-kind and total injection counters.
func (f *Backend) count(k Kind) {
	f.meter.Inc(metrics.CntFaultsInjected)
	switch k {
	case KindCorrupt:
		f.meter.Inc(metrics.CntFaultCorrupts)
	case KindTruncate:
		f.meter.Inc(metrics.CntFaultTruncates)
	case KindReplay:
		f.meter.Inc(metrics.CntFaultReplays)
	case KindUnavail:
		f.meter.Inc(metrics.CntFaultUnavails)
	case KindDelay:
		f.meter.Inc(metrics.CntFaultDelays)
	}
}
