package fault

import (
	"bytes"
	"errors"
	"testing"

	"autarky/internal/mmu"
	"autarky/internal/pagestore"
	"autarky/internal/sim"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"full ladder", Plan{PCorrupt: 0.1, PTruncate: 0.1, PReplay: 0.1, PUnavail: 0.5, PDelay: 0.1, DelayCycles: 100, OutageCycles: 1000}, true},
		{"probability above one", Plan{PCorrupt: 1.5}, false},
		{"negative probability", Plan{PReplay: -0.1}, false},
		{"mass above one", Plan{PCorrupt: 0.6, PUnavail: 0.6}, false},
		{"delay without size", Plan{PDelay: 0.1}, false},
		{"outage without unavailability", Plan{OutageCycles: 500}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestRollIsPureAndSeedSensitive(t *testing.T) {
	p := Plan{Seed: 1, PCorrupt: 0.2, PUnavail: 0.3}
	// Purity: same inputs, same answer, regardless of call history.
	for i := 0; i < 3; i++ {
		if p.roll(opFetch, 1000, 7, 42) != p.roll(opFetch, 1000, 7, 42) {
			t.Fatal("roll is not a pure function of its inputs")
		}
	}
	// Sensitivity: a different seed must change some decisions, and the two
	// op codes must roll independently at the same (cycle, enclave, page).
	q := Plan{Seed: 2, PCorrupt: 0.2, PUnavail: 0.3}
	diffSeed, diffOp := false, false
	for cycle := uint64(0); cycle < 1000; cycle++ {
		if p.roll(opFetch, cycle, 7, 42) != q.roll(opFetch, cycle, 7, 42) {
			diffSeed = true
		}
		if p.roll(opFetch, cycle, 7, 42) != p.roll(opEvict, cycle, 7, 42) {
			diffOp = true
		}
	}
	if !diffSeed {
		t.Error("1000 cycles, two seeds, identical decisions — seed is dead")
	}
	if !diffOp {
		t.Error("evict and fetch never roll differently — op code is dead")
	}
}

// seal produces a valid blob for exercising the fetch-side faults.
func seal(t *testing.T, enclaveID uint64, va mmu.VAddr, version uint64, fill byte) pagestore.Blob {
	t.Helper()
	s, err := pagestore.NewSealer([]byte("fault-test-root"), enclaveID)
	if err != nil {
		t.Fatal(err)
	}
	plain := make([]byte, mmu.PageSize)
	for i := range plain {
		plain[i] = fill
	}
	b, err := s.Seal(va, version, plain)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBackendInjectsDeterministically(t *testing.T) {
	const enclaveID = 1
	va := mmu.VAddr(0x3000)
	run := func() []string {
		clock := sim.NewClock()
		costs := sim.DefaultCosts()
		_ = costs
		f := NewBackend(pagestore.NewStore(), Plan{Seed: 5, PUnavail: 0.4}, clock)
		var outcomes []string
		for i := 0; i < 50; i++ {
			clock.ChargeAmbient(97) // distinct cycle per op, so decisions vary
			err := f.Evict(enclaveID, va, seal(t, enclaveID, va, uint64(i), byte(i)))
			if err != nil {
				outcomes = append(outcomes, "evict-unavail")
				continue
			}
			if _, err := f.Fetch(enclaveID, va); err != nil {
				outcomes = append(outcomes, "fetch-unavail")
			} else {
				outcomes = append(outcomes, "ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %q vs %q — same plan, same sequence, different faults", i, a[i], b[i])
		}
	}
	seen := map[string]bool{}
	for _, o := range a {
		seen[o] = true
	}
	if !seen["ok"] || (!seen["evict-unavail"] && !seen["fetch-unavail"]) {
		t.Errorf("outcome mix %v too uniform to prove anything", seen)
	}
}

func TestUnavailabilityCarriesBlobKey(t *testing.T) {
	clock := sim.NewClock()
	f := NewBackend(pagestore.NewStore(), Plan{Seed: 1, PUnavail: 1}, clock)
	va := mmu.VAddr(0x8000)
	_, err := f.Fetch(9, va)
	if !errors.Is(err, pagestore.ErrUnavailable) {
		t.Fatalf("want ErrUnavailable, got %v", err)
	}
	var be *pagestore.BlobError
	if !errors.As(err, &be) || be.VA != va || be.EnclaveID != 9 || be.Op != "fetch" {
		t.Fatalf("unavailability lost its blob key: %v", err)
	}
}

func TestOutageOutlivesSingleRoll(t *testing.T) {
	clock := sim.NewClock()
	f := NewBackend(pagestore.NewStore(), Plan{Seed: 1, PUnavail: 1, OutageCycles: 10_000}, clock)
	va := mmu.VAddr(0x8000)
	if _, err := f.Fetch(1, va); !errors.Is(err, pagestore.ErrUnavailable) {
		t.Fatalf("first fetch: %v", err)
	}
	// Inside the armed window every operation is refused without re-rolling.
	clock.ChargeAmbient(9_999)
	if err := f.Evict(1, va, seal(t, 1, va, 1, 0xAB)); !errors.Is(err, pagestore.ErrUnavailable) {
		t.Fatalf("inside outage window: %v", err)
	}
}

func TestMangleCorruptTruncateReplay(t *testing.T) {
	const enclaveID = 1
	va := mmu.VAddr(0x3000)
	clock := sim.NewClock()
	// PReplay must be non-zero for the backend to archive history at all.
	f := NewBackend(pagestore.NewStore(), Plan{Seed: 1, PReplay: 0.1}, clock)
	old := seal(t, enclaveID, va, 1, 0x01)
	cur := seal(t, enclaveID, va, 2, 0x02)
	f.archive(enclaveID, va, old)
	f.archive(enclaveID, va, cur)

	if got := f.mangle(KindCorrupt, enclaveID, va, cur); bytes.Equal(got.Ciphertext, cur.Ciphertext) {
		t.Error("corrupt returned the pristine blob")
	} else if len(got.Ciphertext) != len(cur.Ciphertext) {
		t.Error("corrupt changed the blob length")
	}
	if got := f.mangle(KindTruncate, enclaveID, va, cur); len(got.Ciphertext) >= len(cur.Ciphertext) {
		t.Error("truncate did not shorten the blob")
	}
	if got := f.mangle(KindReplay, enclaveID, va, cur); !bytes.Equal(got.Ciphertext, old.Ciphertext) {
		t.Error("replay did not serve the oldest archived blob")
	}
	// The original must stay pristine throughout: faults are what the
	// enclave observes, not what the store holds.
	if !bytes.Equal(cur.Ciphertext, seal(t, enclaveID, va, 2, 0x02).Ciphertext) {
		t.Error("mangle mutated the caller's blob")
	}
}
