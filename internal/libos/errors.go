package libos

import (
	"errors"
	"fmt"

	"autarky/internal/core"
)

// ErrBadConfig is the root sentinel for load-time configuration rejections.
// Every *ConfigError unwraps to it, so callers can match the whole class
// with errors.Is(err, ErrBadConfig) or pull the offending field with
// errors.As into a *ConfigError.
var ErrBadConfig = errors.New("libos: bad config")

// ErrQuotaExceeded marks refusals where an allocation would exceed a
// configured libOS resource bound: the heap region or the ELRANGE growth
// reserve. EPC capacity failures are a different class — see
// core.ErrEPCExhausted.
var ErrQuotaExceeded = errors.New("libos: resource quota exceeded")

// ConfigError reports which Config field was rejected and why.
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("libos: bad config: %s %s", e.Field, e.Reason)
}

// Unwrap ties every ConfigError to the ErrBadConfig sentinel.
func (e *ConfigError) Unwrap() error { return ErrBadConfig }

// Validate checks the configuration for out-of-range values and
// contradictory combinations. Load calls it before doing any work, so a
// bad configuration fails fast with a field-specific error instead of
// surfacing as a confusing runtime termination.
func (c Config) Validate() error {
	if c.Base.Offset() != 0 {
		return &ConfigError{"Base", fmt.Sprintf("must be page-aligned, got %s", c.Base)}
	}
	if c.QuotaPages < 0 {
		return &ConfigError{"QuotaPages", fmt.Sprintf("must be non-negative, got %d", c.QuotaPages)}
	}
	if c.NSSA < 0 {
		return &ConfigError{"NSSA", fmt.Sprintf("must be non-negative, got %d", c.NSSA)}
	}
	if c.Policy < PolicyPinAll || c.Policy > PolicyORAM {
		return &ConfigError{"Policy", fmt.Sprintf("unknown policy %d", int(c.Policy))}
	}
	if c.Mech != core.MechSGX1 && c.Mech != core.MechSGX2 {
		return &ConfigError{"Mech", fmt.Sprintf("unknown paging mechanism %d", int(c.Mech))}
	}
	if c.RateLimitPerProgress < 0 {
		return &ConfigError{"RateLimitPerProgress", fmt.Sprintf("must be non-negative, got %g", c.RateLimitPerProgress)}
	}
	if c.DataClusterPages < 0 {
		return &ConfigError{"DataClusterPages", fmt.Sprintf("must be non-negative, got %d", c.DataClusterPages)}
	}
	// The §5.1.3 fault-path optimizations and the clustering machinery are
	// properties of the self-paging runtime; on a legacy enclave they would
	// silently do nothing, which always indicates a caller mistake.
	if !c.SelfPaging {
		switch {
		case c.InEnclaveResume:
			return &ConfigError{"InEnclaveResume", "requires SelfPaging"}
		case c.ElideAEX:
			return &ConfigError{"ElideAEX", "requires SelfPaging"}
		case c.CodeClusters:
			return &ConfigError{"CodeClusters", "requires SelfPaging"}
		case c.PinData:
			return &ConfigError{"PinData", "requires SelfPaging"}
		}
	}
	if c.InEnclaveResume && c.ElideAEX {
		return &ConfigError{"InEnclaveResume", "is subsumed by ElideAEX; set only one"}
	}
	return nil
}
