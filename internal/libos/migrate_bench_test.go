package libos

import "testing"

// BenchmarkMigrationSeal measures the steady-state quiesce hot path —
// encode the captured pages and seal the envelope into warm scratch
// buffers. ReportAllocs pins the zero-alloc discipline that
// TestMigrationSealZeroAlloc gates: allocs/op must read 0.
func BenchmarkMigrationSeal(b *testing.B) {
	k, clock, costs := newMigKernel(2048)
	p := runMigrant(b, k, clock, costs)
	if err := p.Run(p.captureWritable); err != nil {
		b.Fatal(err)
	}
	epoch := p.Proc.E.MigrationEpoch() + 1
	meas := p.Proc.E.Measurement()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.migPlain = p.encodeMigration(p.migPlain[:0])
		sealed, err := k.CPU.SealMigrationAppend(p.migSealed[:0], epoch, meas, p.migPlain)
		if err != nil {
			b.Fatal(err)
		}
		p.migSealed = sealed
	}
}
