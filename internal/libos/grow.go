package libos

import (
	"fmt"

	"autarky/internal/core"
	"autarky/internal/mmu"
)

// This file implements SGXv2 dynamic heap growth (§2.1: "adding enclave
// pages … requires the OS to coordinate changes with the enclave",
// EAUG + EACCEPT). SGXv1 enclaves must EADD their whole heap before EINIT —
// the reason Graphene enclaves are huge and slow to load — while SGXv2
// enclaves reserve ELRANGE and materialize pages on demand.

// ExtendHeap adds n fresh zero-filled pages from the image's reserved
// ELRANGE tail to a running SGXv2 self-paging enclave: the driver EAUGs and
// maps pending pages, the runtime EACCEPTs each, and the new pages join
// enclave management (unpinned, subject to the active paging policy).
//
// It must be called from inside the enclave (EACCEPT is an enclave-mode
// instruction), i.e. from the application body.
func (p *Process) ExtendHeap(ctx *core.Context, n int) ([]mmu.VAddr, error) {
	if n <= 0 {
		return nil, fmt.Errorf("libos: ExtendHeap(%d)", n)
	}
	if p.Reserve.Pages == 0 {
		return nil, fmt.Errorf("libos: image reserved no ELRANGE for growth (set AppImage.ReservePages)")
	}
	if p.grown+n > p.Reserve.Pages {
		return nil, fmt.Errorf("%w: reserve exhausted (%d of %d pages used, %d requested)",
			ErrQuotaExceeded, p.grown, p.Reserve.Pages, n)
	}
	if _, in := p.Kernel.CPU.InEnclave(); !in {
		return nil, fmt.Errorf("libos: ExtendHeap outside enclave execution")
	}

	vas := make([]mmu.VAddr, n)
	perms := make([]mmu.Perms, n)
	for i := range vas {
		vas[i] = p.Reserve.Page(p.grown + i)
		perms[i] = mmu.PermRW
	}
	pfns, err := p.Kernel.AugPages(p.Enclave(), vas, perms)
	if err != nil {
		return nil, err
	}
	for i, va := range vas {
		if err := p.Kernel.CPU.EACCEPT(va, pfns[i]); err != nil {
			return nil, fmt.Errorf("libos: EACCEPT of grown page %s: %w", va, err)
		}
	}
	if err := p.Runtime.ManagePages(vas, mmu.PermRW, false); err != nil {
		return nil, err
	}
	p.grown += n
	return vas, nil
}

// GrownPages reports how many reserve pages have been materialized.
func (p *Process) GrownPages() int { return p.grown }
