// Package libos is the Graphene-like library OS layer of the prototype
// (paper §6): it loads unmodified "binaries" (synthetic images with code
// and data segments) into an enclave, wires up the Autarky runtime,
// performs automatic clustering of code pages per library and of data pages
// in the allocator, and exposes a heap allocator to the application.
package libos

import (
	"crypto/sha256"
	"encoding/binary"

	"autarky/internal/mmu"
)

// Function is one function within a library, for fine-grained code
// clustering ("a loader may also create clusters at the finer granularity
// of individual functions", §5.2.3).
type Function struct {
	Name  string
	Pages int
}

// Library is one loadable code object. Code page contents are synthesized
// deterministically from the library name, so measurements are reproducible.
type Library struct {
	Name  string
	Pages int // total code pages (ignored if Funcs given)
	// Funcs, when non-empty, partitions the library into functions that are
	// clustered individually.
	Funcs []Function
	// Uses names libraries whose code this library calls into. Their pages
	// join this library's cluster, creating the shared-page structure of
	// §5.2.3 ("if two libraries use a third, their respective clusters will
	// share pages and will also be fetched together").
	Uses []string
}

// TotalPages returns the library's code page count.
func (l *Library) TotalPages() int {
	if len(l.Funcs) == 0 {
		return l.Pages
	}
	n := 0
	for _, f := range l.Funcs {
		n += f.Pages
	}
	return n
}

// AppImage describes a complete enclave application image.
type AppImage struct {
	Name      string
	Libraries []Library
	// DataPages is the initialized data segment size.
	DataPages int
	// HeapPages is the dynamic allocation arena.
	HeapPages int
	// StackPages backs the (pinned) stack and runtime metadata.
	StackPages int
	// ReservePages extends ELRANGE past the loaded image without backing
	// it: SGXv2 enclaves materialize these pages at run time via
	// ExtendHeap (EAUG + EACCEPT). SGXv1 enclaves cannot use them.
	ReservePages int
}

// synthesizeCode fills one page of deterministic "code" bytes for a library
// page, so enclave measurements are stable across runs.
func synthesizeCode(lib string, page int) []byte {
	h := sha256.New()
	h.Write([]byte(lib))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(page))
	h.Write(b[:])
	seed := h.Sum(nil)
	out := make([]byte, mmu.PageSize)
	for i := 0; i < mmu.PageSize; i += len(seed) {
		copy(out[i:], seed)
	}
	return out
}

// Region is a contiguous range of the enclave address space.
type Region struct {
	Name  string
	Base  mmu.VAddr
	Pages int
	Perms mmu.Perms
}

// End returns the first address past the region.
func (r Region) End() mmu.VAddr { return r.Base + mmu.VAddr(r.Pages*mmu.PageSize) }

// Contains reports whether va falls inside the region.
func (r Region) Contains(va mmu.VAddr) bool { return va >= r.Base && va < r.End() }

// Page returns the base address of the i'th page of the region.
func (r Region) Page(i int) mmu.VAddr {
	if i < 0 || i >= r.Pages {
		panic("libos: region page index out of range")
	}
	return r.Base + mmu.VAddr(i*mmu.PageSize)
}

// PageVAs lists all page base addresses of the region.
func (r Region) PageVAs() []mmu.VAddr {
	out := make([]mmu.VAddr, r.Pages)
	for i := range out {
		out[i] = r.Page(i)
	}
	return out
}
