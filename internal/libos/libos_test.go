package libos

import (
	"testing"

	"autarky/internal/core"
	"autarky/internal/hostos"
	"autarky/internal/mmu"
	"autarky/internal/pagestore"
	"autarky/internal/sgx"
	"autarky/internal/sim"
)

func newKernel() (*hostos.Kernel, *sim.Clock, *sim.Costs) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	pt := mmu.NewPageTable(clock, &costs)
	tlb := mmu.NewTLB(16, 4, clock, &costs)
	epc := sgx.NewEPC(0x1000, 2048)
	reg := sgx.NewRegularMemory(1 << 30)
	cpu := sgx.NewCPU(clock, &costs, tlb, pt, epc, reg, []byte("libos-test"))
	k := hostos.NewKernel(cpu, pt, pagestore.NewStore(), clock, &costs)
	return k, clock, &costs
}

func load(t *testing.T, img AppImage, cfg Config) *Process {
	t.Helper()
	k, clock, costs := newKernel()
	p, err := Load(k, clock, costs, img, cfg)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return p
}

func TestLayoutIsContiguousAndDisjoint(t *testing.T) {
	img := AppImage{
		Name: "layout",
		Libraries: []Library{
			{Name: "a.so", Pages: 3},
			{Name: "b.so", Pages: 2},
		},
		DataPages:  4,
		HeapPages:  8,
		StackPages: 2,
	}
	p := load(t, img, Config{})
	a, b := p.Code["a.so"], p.Code["b.so"]
	if a.Base != DefaultBase || a.Pages != 3 {
		t.Fatalf("a region: %+v", a)
	}
	if b.Base != a.End() {
		t.Fatalf("b not after a: %+v %+v", a, b)
	}
	if p.Data.Base != b.End() || p.Heap.Base != p.Data.End() || p.Stack.Base != p.Heap.End() {
		t.Fatal("regions not contiguous")
	}
	total := 3 + 2 + 4 + 8 + 2
	if got := p.Enclave().Size; got != uint64(total)*mmu.PageSize {
		t.Fatalf("enclave size %d", got)
	}
}

func TestCodePermissionsAreRX(t *testing.T) {
	p := load(t, AppImage{
		Name:      "perm",
		Libraries: []Library{{Name: "a.so", Pages: 1}},
		HeapPages: 1,
	}, Config{})
	if p.Code["a.so"].Perms != mmu.PermRX {
		t.Fatal("code not RX")
	}
	if p.Heap.Perms != mmu.PermRW {
		t.Fatal("heap not RW")
	}
}

func TestMeasurementStableAcrossLoads(t *testing.T) {
	img := AppImage{
		Name:      "m",
		Libraries: []Library{{Name: "a.so", Pages: 2}},
		HeapPages: 4,
	}
	p1 := load(t, img, Config{SelfPaging: true})
	p2 := load(t, img, Config{SelfPaging: true})
	if p1.Enclave().Measurement() != p2.Enclave().Measurement() {
		t.Fatal("identical images measured differently")
	}
	p3 := load(t, img, Config{SelfPaging: false})
	if p1.Enclave().Measurement() == p3.Enclave().Measurement() {
		t.Fatal("self-paging attribute not measured")
	}
}

func TestCodeClustersPerLibraryWithUses(t *testing.T) {
	img := AppImage{
		Name: "clusters",
		Libraries: []Library{
			{Name: "libc.so", Pages: 2},
			{Name: "a.so", Pages: 2, Uses: []string{"libc.so"}},
			{Name: "b.so", Pages: 2, Uses: []string{"libc.so"}},
		},
		HeapPages: 4,
	}
	p := load(t, img, Config{SelfPaging: true, CodeClusters: true, Policy: PolicyClusters})
	// a.so's cluster includes libc pages; likewise b.so — so the closure of
	// an a.so page includes b.so pages (transitively through libc).
	aPage := p.Code["a.so"].Page(0).VPN()
	closure := p.Reg.Closure(aPage)
	want := map[uint64]bool{}
	for _, lib := range []string{"libc.so", "a.so", "b.so"} {
		for _, va := range p.Code[lib].PageVAs() {
			want[va.VPN()] = true
		}
	}
	if len(closure) != len(want) {
		t.Fatalf("closure %v, want all code pages of the three libraries", closure)
	}
	for _, vpn := range closure {
		if !want[vpn] {
			t.Fatalf("closure contains unexpected page %#x", vpn)
		}
	}
}

func TestFunctionGranularityClusters(t *testing.T) {
	img := AppImage{
		Name: "funcs",
		Libraries: []Library{{
			Name: "f.so",
			Funcs: []Function{
				{Name: "f1", Pages: 2},
				{Name: "f2", Pages: 1},
			},
		}},
		HeapPages: 4,
	}
	p := load(t, img, Config{SelfPaging: true, CodeClusters: true, Policy: PolicyClusters})
	r := p.Code["f.so"]
	if r.Pages != 3 {
		t.Fatalf("region pages = %d", r.Pages)
	}
	// f1's pages cluster together, f2 separately.
	c1 := p.Reg.Closure(r.Page(0).VPN())
	if len(c1) != 2 {
		t.Fatalf("f1 closure = %v", c1)
	}
	c2 := p.Reg.Closure(r.Page(2).VPN())
	if len(c2) != 1 {
		t.Fatalf("f2 closure = %v", c2)
	}
}

func TestUnknownUsesRejected(t *testing.T) {
	k, clock, costs := newKernel()
	_, err := Load(k, clock, costs, AppImage{
		Name:      "bad",
		Libraries: []Library{{Name: "a.so", Pages: 1, Uses: []string{"nope.so"}}},
		HeapPages: 1,
	}, Config{SelfPaging: true, CodeClusters: true, Policy: PolicyClusters})
	if err == nil {
		t.Fatal("unknown Uses accepted")
	}
}

func TestPinnedPagesResidentAfterQuotaLoad(t *testing.T) {
	img := AppImage{
		Name:      "spill",
		Libraries: []Library{{Name: "a.so", Pages: 4}},
		HeapPages: 48,
	}
	// Quota forces spill during load; pinned (code+stack) must be fetched
	// back before the enclave runs.
	p := load(t, img, Config{
		SelfPaging:     true,
		Policy:         PolicyRateLimit,
		RateLimitBurst: 1 << 30,
		QuotaPages:     24,
	})
	for _, va := range p.Code["a.so"].PageVAs() {
		if resident, managed := p.Runtime.PageResident(va); !resident || !managed {
			t.Fatalf("code page %s not pinned-resident after load", va)
		}
	}
	for _, va := range p.Stack.PageVAs() {
		if resident, _ := p.Runtime.PageResident(va); !resident {
			t.Fatalf("stack page %s not resident after load", va)
		}
	}
}

// --- Allocator ---------------------------------------------------------------

func allocProcess(t *testing.T, heapPages, clusterSize int) *Process {
	return load(t, AppImage{
		Name:      "alloc",
		Libraries: []Library{{Name: "a.so", Pages: 1}},
		HeapPages: heapPages,
	}, Config{
		SelfPaging:       true,
		Policy:           PolicyClusters,
		DataClusterPages: clusterSize,
	})
}

func TestAllocatorBumpAndReuse(t *testing.T) {
	p := allocProcess(t, 8, 0)
	pages, err := p.Alloc.AllocPages(3)
	if err != nil || len(pages) != 3 {
		t.Fatalf("AllocPages: %v %v", pages, err)
	}
	if p.Alloc.Allocated() != 3 {
		t.Fatalf("Allocated = %d", p.Alloc.Allocated())
	}
	if err := p.Alloc.FreePages(pages[:1]); err != nil {
		t.Fatal(err)
	}
	again, err := p.Alloc.AllocPages(1)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != pages[0] {
		t.Fatalf("freed page not reused: %s vs %s", again[0], pages[0])
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	p := allocProcess(t, 4, 0)
	if _, err := p.Alloc.AllocPages(5); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if _, err := p.Alloc.AllocPages(4); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc.AllocPages(1); err == nil {
		t.Fatal("allocation from empty heap accepted")
	}
}

func TestAllocatorDoubleFreeRejected(t *testing.T) {
	p := allocProcess(t, 4, 0)
	pages, _ := p.Alloc.AllocPages(1)
	if err := p.Alloc.FreePages(pages); err != nil {
		t.Fatal(err)
	}
	if err := p.Alloc.FreePages(pages); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestAutomaticDataClustering(t *testing.T) {
	p := allocProcess(t, 32, 4)
	pages, err := p.Alloc.AllocPages(10)
	if err != nil {
		t.Fatal(err)
	}
	// Pages fill clusters of 4 eagerly: pages 0-3 share one, 4-7 the next.
	c0, ok := p.Alloc.PageCluster(pages[0])
	if !ok {
		t.Fatal("page 0 unclustered")
	}
	for i := 1; i < 4; i++ {
		if c, _ := p.Alloc.PageCluster(pages[i]); c != c0 {
			t.Fatalf("page %d in cluster %d, want %d", i, c, c0)
		}
	}
	c4, _ := p.Alloc.PageCluster(pages[4])
	if c4 == c0 {
		t.Fatal("cluster not rotated at capacity")
	}
	if cl, _ := p.Reg.Cluster(c0); cl.Len() != 4 {
		t.Fatalf("cluster len = %d", cl.Len())
	}
}

func TestClusterMergeAfterFrees(t *testing.T) {
	p := allocProcess(t, 64, 8)
	pages, err := p.Alloc.AllocPages(32)
	if err != nil {
		t.Fatal(err)
	}
	// Free most pages of the first two clusters, leaving them sparse.
	var toFree []mmu.VAddr
	toFree = append(toFree, pages[0:6]...)  // cluster 1: 2 left
	toFree = append(toFree, pages[8:14]...) // cluster 2: 2 left
	if err := p.Alloc.FreePages(toFree); err != nil {
		t.Fatal(err)
	}
	// The two sparse clusters should have merged: the 4 surviving pages
	// share one cluster.
	survivors := []mmu.VAddr{pages[6], pages[7], pages[14], pages[15]}
	first, ok := p.Alloc.PageCluster(survivors[0])
	if !ok {
		t.Fatal("survivor unclustered")
	}
	for _, va := range survivors[1:] {
		if c, _ := p.Alloc.PageCluster(va); c != first {
			t.Fatalf("survivors split across clusters %d vs %d", c, first)
		}
	}
}

func TestRunExecutesApp(t *testing.T) {
	p := allocProcess(t, 8, 0)
	ran := false
	err := p.Run(func(ctx *core.Context) {
		ran = true
		ctx.Store(p.Heap.Page(0))
	})
	if err != nil || !ran {
		t.Fatalf("Run: %v ran=%v", err, ran)
	}
}

func TestPolicyKindStrings(t *testing.T) {
	for _, pk := range []PolicyKind{PolicyPinAll, PolicyRateLimit, PolicyClusters, PolicyORAM} {
		if pk.String() == "" {
			t.Errorf("policy %d unnamed", pk)
		}
	}
}

func TestRegionHelpers(t *testing.T) {
	r := Region{Name: "x", Base: 0x1000, Pages: 2, Perms: mmu.PermRW}
	if r.End() != 0x3000 {
		t.Fatalf("End = %s", r.End())
	}
	if !r.Contains(0x1fff) || r.Contains(0x3000) {
		t.Fatal("Contains wrong")
	}
	if len(r.PageVAs()) != 2 {
		t.Fatal("PageVAs wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Page out of range did not panic")
		}
	}()
	r.Page(2)
}

func TestSynthesizedCodeDeterministic(t *testing.T) {
	a := synthesizeCode("lib.so", 0)
	b := synthesizeCode("lib.so", 0)
	c := synthesizeCode("lib.so", 1)
	if string(a) != string(b) {
		t.Fatal("code synthesis not deterministic")
	}
	if string(a) == string(c) {
		t.Fatal("pages identical across indices")
	}
}

func TestExtendHeapSGX2(t *testing.T) {
	p := load(t, AppImage{
		Name:         "grow",
		Libraries:    []Library{{Name: "a.so", Pages: 2}},
		HeapPages:    8,
		ReservePages: 16,
	}, Config{
		SelfPaging:     true,
		Policy:         PolicyRateLimit,
		RateLimitBurst: 1 << 30,
		Mech:           core.MechSGX2,
	})
	err := p.Run(func(ctx *core.Context) {
		fresh, err := p.ExtendHeap(ctx, 6)
		if err != nil {
			t.Fatalf("ExtendHeap: %v", err)
		}
		if len(fresh) != 6 || p.GrownPages() != 6 {
			t.Fatalf("grew %d/%d", len(fresh), p.GrownPages())
		}
		// The grown pages are usable immediately and keep data.
		for i, va := range fresh {
			ctx.Write(va, []byte{0xee, byte(i)})
		}
		for i, va := range fresh {
			buf := make([]byte, 2)
			ctx.Read(va, buf)
			if buf[0] != 0xee || buf[1] != byte(i) {
				t.Errorf("grown page %d corrupted: %v", i, buf)
			}
		}
		// Reserve exhaustion is detected.
		if _, err := p.ExtendHeap(ctx, 11); err == nil {
			t.Error("reserve over-extension accepted")
		}
		// The grown pages are enclave-managed.
		if resident, managed := p.Runtime.PageResident(fresh[0]); !resident || !managed {
			t.Error("grown page not managed+resident")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExtendHeapRequiresReserveAndEnclaveMode(t *testing.T) {
	p := load(t, AppImage{
		Name:      "nogrow",
		Libraries: []Library{{Name: "a.so", Pages: 1}},
		HeapPages: 4,
	}, Config{SelfPaging: true, Policy: PolicyPinAll, Mech: core.MechSGX2})
	err := p.Run(func(ctx *core.Context) {
		if _, err := p.ExtendHeap(ctx, 1); err == nil {
			t.Error("growth without reserve accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Outside enclave execution: rejected.
	p2 := load(t, AppImage{
		Name:         "nogrow2",
		Libraries:    []Library{{Name: "a.so", Pages: 1}},
		HeapPages:    4,
		ReservePages: 4,
	}, Config{SelfPaging: true, Policy: PolicyPinAll, Mech: core.MechSGX2})
	if _, err := p2.ExtendHeap(nil, 1); err == nil {
		t.Fatal("host-mode growth accepted")
	}
}
