package libos

import (
	"encoding/json"
	"fmt"

	"autarky/internal/core"
	"autarky/internal/hostos"
	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/sgx"
	"autarky/internal/sim"
)

// This file implements enclave checkpoint/restore on top of the ordinary
// paging machinery. A checkpoint captures the writable image (data, heap,
// stack), the application progress counter and the per-page anti-replay
// versions at a quiescent point (CSSA 0, nothing executing), seals the lot
// under the platform checkpoint key, and hands the OS an opaque blob.
// Restore destroys the dead incarnation, rebuilds the enclave from the same
// image and configuration — yielding a fresh enclave identity and sealing
// key, so a restart stays detectable exactly as the paper's threat model
// requires — and replays the captured pages through the normal write path,
// re-encrypting them under the new incarnation's key. Old blobs are never
// reused.

// Checkpoint is a sealed, opaque snapshot of an enclave process. The OS can
// store or transport it but cannot read or undetectably modify it.
type Checkpoint struct {
	// Sealed is the authenticated checkpoint blob (see sgx.SealCheckpoint).
	Sealed []byte
}

// checkpointPage is one captured writable page.
type checkpointPage struct {
	VA   uint64
	Data []byte
}

// checkpointPayload is the plaintext the checkpoint seals.
type checkpointPayload struct {
	Image       AppImage
	Config      Config
	Measurement [32]byte
	Progress    uint64
	Versions    map[uint64]uint64
	Pages       []checkpointPage
}

// Checkpoint captures the process's state into a sealed blob. The enclave
// must be alive and not currently executing; capture drives the real access
// path (faulting evicted pages back in), so a hostile backing store can make
// a checkpoint attempt fail — the caller keeps its previous checkpoint in
// that case.
func (p *Process) Checkpoint() (*Checkpoint, error) {
	k := p.Kernel
	if _, in := k.CPU.InEnclave(); in {
		return nil, fmt.Errorf("libos: checkpoint while the enclave is executing")
	}
	if dead, reason, _ := p.Proc.E.Dead(); dead {
		return nil, fmt.Errorf("libos: checkpoint of dead enclave (%s): %w", reason, sgx.ErrEnclaveTerminated)
	}
	var pages []checkpointPage
	err := p.Run(func(ctx *core.Context) {
		for _, r := range p.writableRegions() {
			for _, va := range r.PageVAs() {
				buf := make([]byte, mmu.PageSize)
				ctx.Read(va, buf)
				pages = append(pages, checkpointPage{VA: uint64(va), Data: buf})
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("libos: checkpoint capture: %w", err)
	}
	payload := checkpointPayload{
		Image:       p.Image,
		Config:      p.cfg,
		Measurement: p.Proc.E.Measurement(),
		Progress:    p.Runtime.Progress(),
		Versions:    p.Proc.E.Versions(),
		Pages:       pages,
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("libos: encoding checkpoint: %w", err)
	}
	sealed, err := k.CPU.SealCheckpoint(raw)
	if err != nil {
		return nil, err
	}
	m := metrics.Of(k.Clock)
	m.Inc(metrics.CntCheckpoints)
	m.Add(metrics.CntCheckpointPages, uint64(len(pages)))
	return &Checkpoint{Sealed: sealed}, nil
}

// validatePayload sanity-checks a decoded checkpoint before any of it is
// used to size allocations or drive the replay path. Only payloads sealed
// under the platform key reach this point, but "sealed" does not imply
// "shaped like a checkpoint" — a hostile sealing oracle, or a bug in an
// older writer, must surface ErrBadCheckpoint, never a panic.
func validatePayload(p *checkpointPayload) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("libos: checkpoint payload: "+format+": %w",
			append(args, sgx.ErrBadCheckpoint)...)
	}
	img := &p.Image
	total := img.DataPages + img.HeapPages + img.StackPages + img.ReservePages
	if img.DataPages < 0 || img.HeapPages < 0 || img.StackPages < 0 || img.ReservePages < 0 {
		return bad("negative region size")
	}
	for i := range img.Libraries {
		l := &img.Libraries[i]
		if l.Pages < 0 {
			return bad("library %q has negative page count", l.Name)
		}
		for _, f := range l.Funcs {
			if f.Pages < 0 {
				return bad("function %q has negative page count", f.Name)
			}
		}
		total += l.TotalPages()
	}
	const maxImagePages = 1 << 20 // 4 GiB of ELRANGE; far beyond any test image
	if total <= 0 || total > maxImagePages {
		return bad("implausible image size %d pages", total)
	}
	for i := range p.Pages {
		pg := &p.Pages[i]
		if pg.VA%mmu.PageSize != 0 {
			return bad("unaligned page address %#x", pg.VA)
		}
		if len(pg.Data) > mmu.PageSize {
			return bad("page %#x carries %d bytes", pg.VA, len(pg.Data))
		}
	}
	return nil
}

// writableRegions returns the regions a checkpoint must carry, in ascending
// address order. Code pages are omitted: the loader regenerates them
// deterministically and the measurement check proves they match.
func (p *Process) writableRegions() []Region {
	var out []Region
	for _, r := range []Region{p.Data, p.Heap, p.Stack} {
		if r.Pages > 0 {
			out = append(out, r)
		}
	}
	return out
}

// Restore rebuilds a process from a sealed checkpoint on the given kernel.
// The previous incarnation, if still occupying the checkpoint's address
// range, must be dead; it is torn down first. The restored enclave is a
// fresh identity loaded from the same image and configuration — Restore
// verifies the measurement matches the checkpoint before replaying the
// captured pages and progress counter into it.
func Restore(k *hostos.Kernel, clock *sim.Clock, costs *sim.Costs, cp *Checkpoint) (*Process, error) {
	if cp == nil || len(cp.Sealed) == 0 {
		return nil, fmt.Errorf("libos: restore from empty checkpoint: %w", sgx.ErrBadCheckpoint)
	}
	raw, err := k.CPU.OpenCheckpoint(cp.Sealed)
	if err != nil {
		return nil, err
	}
	var payload checkpointPayload
	if err := json.Unmarshal(raw, &payload); err != nil {
		return nil, fmt.Errorf("libos: decoding checkpoint: %v: %w", err, sgx.ErrBadCheckpoint)
	}
	if err := validatePayload(&payload); err != nil {
		return nil, err
	}
	return restorePayload(k, clock, costs, &payload, 0)
}

// restorePayload is the shared rebuild-and-replay tail of Restore and Adopt:
// tear down the dead incarnation occupying the address range, rebuild the
// enclave from the payload's image and configuration, verify the measurement
// matches the source, and replay the captured pages through the normal write
// path — re-encrypting every page under the new incarnation's identity.
// seedEpoch, when non-zero, records the migration freshness counter the new
// incarnation resumes from (Adopt); Restore passes zero.
func restorePayload(k *hostos.Kernel, clock *sim.Clock, costs *sim.Costs, payload *checkpointPayload, seedEpoch uint64) (*Process, error) {
	base := payload.Config.Base
	if base == 0 {
		base = DefaultBase
	}
	if old := k.ProcAt(base); old != nil {
		if err := k.DestroyEnclave(old); err != nil {
			return nil, err
		}
	}
	cfg := payload.Config
	cfg.seedVersions = payload.Versions
	cfg.seedEpoch = seedEpoch
	p, err := Load(k, clock, costs, payload.Image, cfg)
	if err != nil {
		return nil, err
	}
	if p.Proc.E.Measurement() != payload.Measurement {
		return nil, fmt.Errorf("libos: restored enclave measurement differs from checkpoint: %w", sgx.ErrBadCheckpoint)
	}
	// Replay only pages the rebuilt image actually has as writable state; a
	// sealed payload naming any other address is inconsistent with the image
	// it carries and must fail cleanly, not fault the replay.
	writable := make(map[mmu.VAddr]bool)
	for _, r := range p.writableRegions() {
		for _, va := range r.PageVAs() {
			writable[va] = true
		}
	}
	for i := range payload.Pages {
		if !writable[mmu.VAddr(payload.Pages[i].VA)] {
			return nil, fmt.Errorf("libos: checkpoint page %#x outside the image's writable regions: %w",
				payload.Pages[i].VA, sgx.ErrBadCheckpoint)
		}
	}
	err = p.Run(func(ctx *core.Context) {
		for i := range payload.Pages {
			ctx.Write(mmu.VAddr(payload.Pages[i].VA), payload.Pages[i].Data)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("libos: checkpoint replay: %w", err)
	}
	p.Runtime.SeedProgress(payload.Progress)
	return p, nil
}
