package libos

import (
	"fmt"

	"autarky/internal/cluster"
	"autarky/internal/core"
	"autarky/internal/hostos"
	"autarky/internal/mmu"
	"autarky/internal/sgx"
	"autarky/internal/sim"
)

// PolicyKind selects the secure self-paging policy the loader wires up.
type PolicyKind int

// Available policies.
const (
	// PolicyPinAll pins the entire image; any fault is an attack (the
	// automatic protection of workloads that fit in EPC, §7.3).
	PolicyPinAll PolicyKind = iota
	// PolicyRateLimit demand-pages data with a fault-rate bound (§5.2.4).
	PolicyRateLimit
	// PolicyClusters pages data and code in page clusters (§5.2.3).
	PolicyClusters
	// PolicyORAM pins everything; data accesses go through the cached
	// software ORAM the application wires separately (§5.2.2).
	PolicyORAM
)

// String names the policy.
func (p PolicyKind) String() string {
	switch p {
	case PolicyPinAll:
		return "pin-all"
	case PolicyRateLimit:
		return "rate-limit"
	case PolicyClusters:
		return "clusters"
	case PolicyORAM:
		return "oram"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(p))
	}
}

// Config controls loading.
type Config struct {
	// Base is the enclave's load address (page-aligned; 0 = DefaultBase).
	// Machines hosting several enclaves must give each a disjoint ELRANGE —
	// the facade's Spawn does this automatically.
	Base mmu.VAddr
	// Priority is the enclave's scheduling priority under the machine
	// scheduler's priority policy (higher runs first; round-robin ignores it).
	Priority int
	// SelfPaging loads the enclave with Autarky's attested attribute;
	// false loads a legacy (vanilla SGX) enclave.
	SelfPaging bool
	// InEnclaveResume and ElideAEX enable the optional hardware
	// optimizations of §5.1.3 ("no upcall" and "no upcall/AEX" in Table 2).
	InEnclaveResume bool
	ElideAEX        bool
	// Mech selects SGXv1 or SGXv2 paging for the runtime.
	Mech core.Mech
	// QuotaPages limits the enclave's resident EPC frames (0 = unlimited);
	// this is the experiments' effective-EPC-size knob.
	QuotaPages int

	Policy PolicyKind
	// Rate limiting parameters (PolicyRateLimit, or clusters+limit).
	RateLimitPerProgress float64
	RateLimitBurst       uint64
	// DataClusterPages enables automatic data clustering in the allocator
	// with the given cluster size (§5.2.3 "automatic clustering").
	DataClusterPages int
	// CodeClusters builds one cluster per library (plus its Uses closure);
	// without it code pages are pinned.
	CodeClusters bool
	// PinData forces data/heap pages to be pinned even for paging policies
	// (used by workloads that manage their own sensitive buffers).
	PinData bool

	NSSA int

	// seedVersions carries checkpointed anti-replay counters into the new
	// incarnation; only Restore and Adopt set it.
	seedVersions map[uint64]uint64
	// seedEpoch carries the migration freshness counter an adopted
	// incarnation resumes from; only Adopt sets it.
	seedEpoch uint64
}

// Process is a loaded enclave application.
type Process struct {
	Image   AppImage
	Kernel  *hostos.Kernel
	Proc    *hostos.Proc
	Runtime *core.Runtime
	Reg     *cluster.Registry

	Code  map[string]Region // per library
	Data  Region
	Heap  Region
	Stack Region
	// Reserve is the unbacked ELRANGE tail for SGXv2 dynamic growth.
	Reserve Region

	Alloc *Allocator

	cfg      Config
	grown    int
	handlers []namedHandler

	// Migration scratch (see migrate.go): the quiesce hot path captures,
	// encodes and seals into these reused buffers so repeated migrations of
	// a long-lived process allocate nothing once warm.
	migPages   []byte
	migPageVAs []uint64
	migVPNs    []uint64
	migPlain   []byte
	migSealed  []byte
	migCapture func(*core.Context)
}

// Enclave returns the underlying enclave.
func (p *Process) Enclave() *sgx.Enclave { return p.Proc.E }

// Config returns the load-time configuration.
func (p *Process) Config() Config { return p.cfg }

// Run executes app inside the enclave until it returns or the enclave
// terminates.
func (p *Process) Run(app func(*core.Context)) error {
	p.Runtime.App = app
	return p.Kernel.Run(p.Proc)
}

// DefaultBase is where images are loaded (any page-aligned address works).
const DefaultBase = mmu.VAddr(0x10_0000_0000)

// Load builds the enclave for an image under the given configuration:
// layout, measurement, page-management transfer, automatic clustering and
// policy wiring.
func Load(k *hostos.Kernel, clock *sim.Clock, costs *sim.Costs, img AppImage, cfg Config) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// --- layout ---
	base := cfg.Base
	if base == 0 {
		base = DefaultBase
	}
	cursor := base
	codeRegions := make(map[string]Region, len(img.Libraries))
	var segs []hostos.Segment
	for _, lib := range img.Libraries {
		npages := lib.TotalPages()
		if npages == 0 {
			return nil, fmt.Errorf("libos: library %q has no pages", lib.Name)
		}
		r := Region{Name: lib.Name, Base: cursor, Pages: npages, Perms: mmu.PermRX}
		codeRegions[lib.Name] = r
		content := make([]byte, npages*mmu.PageSize)
		for pg := 0; pg < npages; pg++ {
			copy(content[pg*mmu.PageSize:], synthesizeCode(lib.Name, pg))
		}
		segs = append(segs, hostos.Segment{VA: r.Base, Data: content, Perms: mmu.PermRX})
		cursor = r.End()
	}
	data := Region{Name: "data", Base: cursor, Pages: img.DataPages, Perms: mmu.PermRW}
	cursor = data.End()
	heap := Region{Name: "heap", Base: cursor, Pages: img.HeapPages, Perms: mmu.PermRW}
	cursor = heap.End()
	stackPages := img.StackPages
	if stackPages == 0 {
		stackPages = 8
	}
	stack := Region{Name: "stack", Base: cursor, Pages: stackPages, Perms: mmu.PermRW}
	cursor = stack.End()
	reserve := Region{Name: "reserve", Base: cursor, Pages: img.ReservePages, Perms: mmu.PermRW}
	cursor = reserve.End()

	if data.Pages > 0 {
		segs = append(segs, hostos.Segment{VA: data.Base, Pages: data.Pages, Perms: mmu.PermRW})
	}
	if heap.Pages > 0 {
		segs = append(segs, hostos.Segment{VA: heap.Base, Pages: heap.Pages, Perms: mmu.PermRW})
	}
	segs = append(segs, hostos.Segment{VA: stack.Base, Pages: stack.Pages, Perms: mmu.PermRW})

	// --- attributes ---
	attrs := sgx.Attributes(0)
	if cfg.SelfPaging {
		attrs |= sgx.AttrSelfPaging
	}
	if cfg.InEnclaveResume {
		attrs |= sgx.AttrInEnclaveResume
	}
	if cfg.ElideAEX {
		attrs |= sgx.AttrElideAEX
	}
	if cfg.Mech == core.MechSGX2 {
		attrs |= sgx.AttrSGX2
	}

	// --- runtime + enclave ---
	rt := core.NewRuntime(k.CPU, k, clock, costs)
	rt.Mech = cfg.Mech
	spec := hostos.EnclaveSpec{
		Base:     base,
		Size:     uint64(cursor - base),
		Attrs:    attrs,
		NSSA:     cfg.NSSA,
		Runtime:  rt,
		Segments: segs,
		Quota:    cfg.QuotaPages,
		Mech:     hostos.PagingMech(cfg.Mech),

		SeedVersions:       cfg.seedVersions,
		SeedMigrationEpoch: cfg.seedEpoch,
	}
	proc, err := k.LoadEnclave(spec)
	if err != nil {
		return nil, err
	}
	rt.Attach(proc.E)

	p := &Process{
		Image:   img,
		Kernel:  k,
		Proc:    proc,
		Runtime: rt,
		Reg:     cluster.NewRegistry(),
		Code:    codeRegions,
		Data:    data,
		Heap:    heap,
		Stack:   stack,
		Reserve: reserve,
		cfg:     cfg,
	}
	p.Alloc = newAllocator(p, heap, cfg.DataClusterPages)

	if cfg.SelfPaging {
		if err := p.wirePolicy(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// wirePolicy sets page management and the paging policy per configuration.
func (p *Process) wirePolicy() error {
	cfg := p.cfg
	rt := p.Runtime

	// The stack and runtime metadata are always pinned: the fault handler
	// must never fault (§5.3 "nested faults can be avoided by pinning all
	// the handler's code and data pages").
	if err := rt.ManagePages(p.Stack.PageVAs(), p.Stack.Perms, true); err != nil {
		return err
	}

	// Code pages: pinned, or clustered per library.
	pinCode := !cfg.CodeClusters
	for _, lib := range p.Image.Libraries {
		r := p.Code[lib.Name]
		if err := rt.ManagePages(r.PageVAs(), r.Perms, pinCode); err != nil {
			return err
		}
	}
	if cfg.CodeClusters {
		if err := p.buildCodeClusters(); err != nil {
			return err
		}
	}

	// Data + heap pages.
	pinData := cfg.PinData || cfg.Policy == PolicyPinAll || cfg.Policy == PolicyORAM
	for _, r := range []Region{p.Data, p.Heap} {
		if r.Pages == 0 {
			continue
		}
		if err := rt.ManagePages(r.PageVAs(), r.Perms, pinData); err != nil {
			return err
		}
	}

	switch cfg.Policy {
	case PolicyPinAll:
		rt.Policy = core.NewPinAllPolicy()
	case PolicyRateLimit:
		rt.Policy = core.NewRateLimitPolicy(cfg.RateLimitPerProgress, cfg.RateLimitBurst)
	case PolicyClusters:
		cp := core.NewClusterPolicy(p.Reg)
		if cfg.RateLimitPerProgress > 0 || cfg.RateLimitBurst > 0 {
			cp.Limit = core.NewRateLimitPolicy(cfg.RateLimitPerProgress, cfg.RateLimitBurst)
		}
		rt.Policy = cp
	case PolicyORAM:
		rt.Policy = core.NewORAMPolicy()
	}

	// Pinned pages must be resident before the enclave runs; pages spilled
	// during loading are fetched back now (SetEnclaveManaged returned their
	// status, §5.2.1).
	return rt.EnsurePinnedResident()
}

// buildCodeClusters creates one cluster per library containing its pages
// plus the pages of every library it uses (shared pages across clusters).
// With Funcs present, each function gets its own cluster instead.
func (p *Process) buildCodeClusters() error {
	libRegion := func(name string) (Region, error) {
		r, ok := p.Code[name]
		if !ok {
			return Region{}, fmt.Errorf("libos: unknown library %q in Uses", name)
		}
		return r, nil
	}
	for _, lib := range p.Image.Libraries {
		r := p.Code[lib.Name]
		if len(lib.Funcs) > 0 {
			page := 0
			for _, fn := range lib.Funcs {
				id := p.Reg.NewCluster(0)
				for i := 0; i < fn.Pages; i++ {
					if err := p.Reg.AddPage(id, r.Page(page+i).VPN()); err != nil {
						return err
					}
				}
				page += fn.Pages
			}
			continue
		}
		id := p.Reg.NewCluster(0)
		for _, va := range r.PageVAs() {
			if err := p.Reg.AddPage(id, va.VPN()); err != nil {
				return err
			}
		}
		for _, used := range lib.Uses {
			ur, err := libRegion(used)
			if err != nil {
				return err
			}
			for _, va := range ur.PageVAs() {
				if err := p.Reg.AddPage(id, va.VPN()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
