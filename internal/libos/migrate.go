package libos

import (
	"encoding/binary"
	"fmt"
	"math"
	"slices"

	"autarky/internal/core"
	"autarky/internal/hostos"
	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/sgx"
	"autarky/internal/sim"
)

// This file implements the libos half of live migration: quiesce the
// process, capture its writable state, encode it with a deterministic
// binary codec, seal it into a freshness-stamped migration envelope, and
// retire the source incarnation — then, on the destination, the mirror
// image: authenticate, verify freshness against the counter service, decode
// defensively, rebuild the enclave under the destination machine's EPC
// geometry and cost model, and replay the pages through the normal write
// path so every page is re-sealed under the destination identity.
//
// Unlike checkpoints (JSON, cold path) the migration codec is hand-written
// binary: quiesce sits on the serving tail — every byte of downtime is
// attributed — so encode+seal must not allocate once the process's scratch
// buffers are warm.

// migFormatVersion stamps the codec layout; a decoder seeing any other
// value rejects the payload outright.
const migFormatVersion = 1

// Decode guards: a sealed payload is authenticated, but "authenticated" is
// not "well-formed" (an older writer, a hostile sealing oracle). Counts are
// capped before any allocation they would size.
const (
	maxMigStringLen = 1 << 16
	maxMigLibraries = 1 << 12
	maxMigFuncs     = 1 << 12
	maxMigPages     = 1 << 20
)

// Migration is a sealed, self-contained unit of enclave state in transit
// between machines. The host (and the fleet layer) can store and transport
// it but cannot read or undetectably modify it; its freshness epoch and
// source measurement ride in the envelope's authenticated header.
type Migration struct {
	// Sealed is the authenticated migration envelope
	// (see sgx.CPU.SealMigrationAppend).
	Sealed []byte
}

// Migrate quiesces the process and produces its migration envelope: the
// writable image, progress counter and anti-replay versions are captured at
// CSSA 0, encoded, sealed under the platform migration key with freshness
// epoch MigrationEpoch()+1, and the source incarnation is retired — after
// Migrate returns successfully this process can never run again, and every
// kernel service on its handle reports hostos.ErrMigrated. On error the
// process is untouched and still runnable.
//
// The caller must have drained the process's scheduling (sched.Drain) and
// serving (service.Server.Drain) first; Migrate itself only guards the
// enclave-level preconditions.
func (p *Process) Migrate() (*Migration, error) {
	sealed, npages, err := p.sealMigration()
	if err != nil {
		return nil, err
	}
	// The envelope leaves this machine; it must own its bytes, not alias
	// the process's scratch (which the retire below makes dead anyway).
	blob := make([]byte, len(sealed))
	copy(blob, sealed)
	if err := p.Kernel.RetireEnclave(p.Proc); err != nil {
		return nil, fmt.Errorf("libos: retiring migrated enclave: %w", err)
	}
	m := metrics.Of(p.Kernel.Clock)
	m.Inc(metrics.CntMigrations)
	m.Add(metrics.CntMigrationPages, uint64(npages))
	return &Migration{Sealed: blob}, nil
}

// sealMigration is the capture→encode→seal pipeline, returning a view into
// the process's reused seal scratch (valid until the next call) and the
// captured page count. Split from Migrate so the zero-alloc benchmark can
// exercise exactly the hot path without the blob copy and teardown.
func (p *Process) sealMigration() ([]byte, int, error) {
	k := p.Kernel
	if _, in := k.CPU.InEnclave(); in {
		return nil, 0, fmt.Errorf("libos: migrate while the enclave is executing")
	}
	if dead, reason, _ := p.Proc.E.Dead(); dead {
		if reason == sgx.TerminateMigrated {
			// Quiesce-twice: this incarnation already handed its state off.
			return nil, 0, fmt.Errorf("libos: migrate of already-migrated enclave: %w", hostos.ErrMigrated)
		}
		return nil, 0, fmt.Errorf("libos: migrate of dead enclave (%s): %w", reason, sgx.ErrEnclaveTerminated)
	}
	if p.migCapture == nil {
		p.migCapture = p.captureWritable
	}
	// Capture drives the real access path (faulting evicted pages back in),
	// so a hostile backing store can fail the quiesce — the source is then
	// still live and keeps serving.
	if err := p.Run(p.migCapture); err != nil {
		return nil, 0, fmt.Errorf("libos: migration capture: %w", err)
	}
	p.migPlain = p.encodeMigration(p.migPlain[:0])
	epoch := p.Proc.E.MigrationEpoch() + 1
	sealed, err := k.CPU.SealMigrationAppend(p.migSealed[:0], epoch, p.Proc.E.Measurement(), p.migPlain)
	if err != nil {
		return nil, 0, err
	}
	p.migSealed = sealed
	return sealed, len(p.migPageVAs), nil
}

// zeroPage pads the capture buffer one page at a time without a per-page
// temporary.
var zeroPage [mmu.PageSize]byte

// captureWritable snapshots every writable page into the process's reused
// capture buffers, running inside the enclave so evicted pages are faulted
// back through the ordinary (policy-visible) path.
func (p *Process) captureWritable(ctx *core.Context) {
	p.migPages = p.migPages[:0]
	p.migPageVAs = p.migPageVAs[:0]
	for _, r := range p.writableRegions() {
		for i := 0; i < r.Pages; i++ {
			va := r.Page(i)
			start := len(p.migPages)
			p.migPages = append(p.migPages, zeroPage[:]...)
			ctx.Read(va, p.migPages[start:])
			p.migPageVAs = append(p.migPageVAs, uint64(va))
		}
	}
}

func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendInt(b []byte, v int) []byte { return appendU64(b, uint64(int64(v))) }

func appendStr(b []byte, s string) []byte {
	b = appendU64(b, uint64(len(s)))
	return append(b, s...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return appendU64(b, 1)
	}
	return appendU64(b, 0)
}

// encodeMigration appends the process's captured state to dst in the
// deterministic binary layout decodeMigration reverses. Field order is the
// struct order of checkpointPayload (image, config, progress, versions,
// pages); the measurement travels in the envelope header, not here. The
// version table is emitted in ascending VPN order so identical state always
// encodes to identical bytes.
func (p *Process) encodeMigration(dst []byte) []byte {
	dst = appendU64(dst, migFormatVersion)

	img := &p.Image
	dst = appendStr(dst, img.Name)
	dst = appendU64(dst, uint64(len(img.Libraries)))
	for i := range img.Libraries {
		l := &img.Libraries[i]
		dst = appendStr(dst, l.Name)
		dst = appendInt(dst, l.Pages)
		dst = appendU64(dst, uint64(len(l.Funcs)))
		for _, f := range l.Funcs {
			dst = appendStr(dst, f.Name)
			dst = appendInt(dst, f.Pages)
		}
		dst = appendU64(dst, uint64(len(l.Uses)))
		for _, u := range l.Uses {
			dst = appendStr(dst, u)
		}
	}
	dst = appendInt(dst, img.DataPages)
	dst = appendInt(dst, img.HeapPages)
	dst = appendInt(dst, img.StackPages)
	dst = appendInt(dst, img.ReservePages)

	cfg := &p.cfg
	dst = appendU64(dst, uint64(cfg.Base))
	dst = appendInt(dst, cfg.Priority)
	dst = appendBool(dst, cfg.SelfPaging)
	dst = appendBool(dst, cfg.InEnclaveResume)
	dst = appendBool(dst, cfg.ElideAEX)
	dst = appendU64(dst, uint64(cfg.Mech))
	dst = appendInt(dst, cfg.QuotaPages)
	dst = appendU64(dst, uint64(cfg.Policy))
	dst = appendU64(dst, math.Float64bits(cfg.RateLimitPerProgress))
	dst = appendU64(dst, cfg.RateLimitBurst)
	dst = appendInt(dst, cfg.DataClusterPages)
	dst = appendBool(dst, cfg.CodeClusters)
	dst = appendBool(dst, cfg.PinData)
	dst = appendInt(dst, cfg.NSSA)

	dst = appendU64(dst, p.Runtime.Progress())

	e := p.Proc.E
	p.migVPNs = e.VersionVPNs(p.migVPNs[:0])
	slices.Sort(p.migVPNs)
	dst = appendU64(dst, uint64(len(p.migVPNs)))
	for _, vpn := range p.migVPNs {
		dst = appendU64(dst, vpn)
		dst = appendU64(dst, e.Version(mmu.VAddr(vpn*mmu.PageSize)))
	}

	dst = appendU64(dst, uint64(len(p.migPageVAs)))
	for i, va := range p.migPageVAs {
		dst = appendU64(dst, va)
		pg := p.migPages[i*mmu.PageSize : (i+1)*mmu.PageSize]
		dst = appendU64(dst, uint64(len(pg)))
		dst = append(dst, pg...)
	}
	return dst
}

// migReader is a bounds-checked cursor over a migration payload. The first
// structural defect latches err; every later read returns zero values, so
// decode logic reads straight through and checks once.
type migReader struct {
	b   []byte
	off int
	err error
}

func (r *migReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("libos: migration payload: "+format+": %w",
			append(args, sgx.ErrBadCheckpoint)...)
	}
}

func (r *migReader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.fail("truncated at byte %d", r.off)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// count reads a collection length and refuses anything past max or past
// what the remaining bytes could possibly hold (minSize bytes per element),
// so a hostile length can never size an allocation.
func (r *migReader) count(max int, minSize int) int {
	v := r.u64()
	if r.err != nil {
		return 0
	}
	if v > uint64(max) || v > uint64(len(r.b)-r.off)/uint64(minSize) {
		r.fail("implausible element count %d at byte %d", v, r.off-8)
		return 0
	}
	return int(v)
}

func (r *migReader) num() int {
	v := int64(r.u64())
	if r.err == nil && (v < math.MinInt32 || v > math.MaxInt32) {
		r.fail("integer %d out of range at byte %d", v, r.off-8)
		return 0
	}
	return int(v)
}

func (r *migReader) boolean() bool { return r.u64() != 0 }

func (r *migReader) str() string {
	n := r.count(maxMigStringLen, 1)
	if r.err != nil {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *migReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated at byte %d", r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// decodeMigration parses an authenticated migration payload into the shared
// checkpoint shape, defensively: every structural defect — truncation,
// implausible counts, trailing garbage — yields an ErrBadCheckpoint-wrapped
// field error, never a panic or a partially-populated payload.
func decodeMigration(plain []byte) (*checkpointPayload, error) {
	r := &migReader{b: plain}
	if v := r.u64(); r.err == nil && v != migFormatVersion {
		return nil, fmt.Errorf("libos: migration payload: unknown format version %d: %w", v, sgx.ErrBadCheckpoint)
	}

	var payload checkpointPayload
	img := &payload.Image
	img.Name = r.str()
	img.Libraries = make([]Library, r.count(maxMigLibraries, 8))
	for i := range img.Libraries {
		l := &img.Libraries[i]
		l.Name = r.str()
		l.Pages = r.num()
		if n := r.count(maxMigFuncs, 8); n > 0 {
			l.Funcs = make([]Function, n)
			for j := range l.Funcs {
				l.Funcs[j].Name = r.str()
				l.Funcs[j].Pages = r.num()
			}
		}
		if n := r.count(maxMigFuncs, 8); n > 0 {
			l.Uses = make([]string, n)
			for j := range l.Uses {
				l.Uses[j] = r.str()
			}
		}
	}
	img.DataPages = r.num()
	img.HeapPages = r.num()
	img.StackPages = r.num()
	img.ReservePages = r.num()

	cfg := &payload.Config
	cfg.Base = mmu.VAddr(r.u64())
	cfg.Priority = r.num()
	cfg.SelfPaging = r.boolean()
	cfg.InEnclaveResume = r.boolean()
	cfg.ElideAEX = r.boolean()
	cfg.Mech = core.Mech(r.num())
	cfg.QuotaPages = r.num()
	cfg.Policy = PolicyKind(r.num())
	cfg.RateLimitPerProgress = math.Float64frombits(r.u64())
	cfg.RateLimitBurst = r.u64()
	cfg.DataClusterPages = r.num()
	cfg.CodeClusters = r.boolean()
	cfg.PinData = r.boolean()
	cfg.NSSA = r.num()

	payload.Progress = r.u64()

	if n := r.count(maxMigPages, 16); r.err == nil {
		payload.Versions = make(map[uint64]uint64, n)
		for i := 0; i < n; i++ {
			vpn := r.u64()
			payload.Versions[vpn] = r.u64()
		}
	}

	if n := r.count(maxMigPages, 16); r.err == nil && n > 0 {
		payload.Pages = make([]checkpointPage, n)
		for i := range payload.Pages {
			payload.Pages[i].VA = r.u64()
			sz := r.num()
			if r.err == nil && (sz < 0 || sz > mmu.PageSize) {
				r.fail("page %#x carries %d bytes", payload.Pages[i].VA, sz)
			}
			payload.Pages[i].Data = r.bytes(sz)
		}
	}

	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("libos: migration payload: %d trailing bytes: %w", len(r.b)-r.off, sgx.ErrBadCheckpoint)
	}
	return &payload, nil
}

// Adopt completes a migration on the destination machine: authenticate the
// envelope, check its freshness epoch against the counter service, decode
// and validate the payload, rebuild the enclave under the destination's EPC
// geometry, cost model and backend stack (pages re-cluster and re-seal
// under the new identity via the ordinary load + write-replay path), and
// commit the epoch so the envelope can never be adopted again.
//
// The misuse taxonomy is deliberate and ordered: a structurally bad or
// tampered envelope fails with sgx.ErrBadCheckpoint before freshness is
// consulted; a replayed or superseded envelope fails with
// sgx.ErrStaleMigration; an envelope whose address range is still occupied
// by a live enclave fails with hostos.ErrEnclaveLive (adopt-while-running);
// a measurement mismatch after rebuild fails with sgx.ErrBadCheckpoint.
// Only a fully successful adopt advances the counter.
func Adopt(k *hostos.Kernel, clock *sim.Clock, costs *sim.Costs, mig *Migration, counters *sgx.CounterService) (*Process, error) {
	m := metrics.Of(k.Clock)
	reject := func(err error) (*Process, error) {
		m.Inc(metrics.CntAdoptsRejected)
		return nil, err
	}
	if mig == nil || len(mig.Sealed) == 0 {
		return reject(fmt.Errorf("libos: adopt of empty migration envelope: %w", sgx.ErrBadCheckpoint))
	}
	epoch, meas, plain, err := k.CPU.OpenMigration(mig.Sealed)
	if err != nil {
		return reject(err)
	}
	if counters != nil {
		if err := counters.Verify(meas, epoch); err != nil {
			return reject(err)
		}
	}
	payload, err := decodeMigration(plain)
	if err != nil {
		return reject(err)
	}
	payload.Measurement = meas
	if err := validatePayload(payload); err != nil {
		return reject(err)
	}
	p, err := restorePayload(k, clock, costs, payload, epoch)
	if err != nil {
		return reject(err)
	}
	if counters != nil {
		counters.Commit(meas, epoch)
	}
	m.Inc(metrics.CntAdopts)
	return p, nil
}
