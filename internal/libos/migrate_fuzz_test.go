package libos

import (
	"bytes"
	"errors"
	"testing"

	"autarky/internal/core"
	"autarky/internal/sgx"
)

// fuzzMigration builds one genuine migration envelope plus the CPU that
// sealed it (for sealing hostile-but-authentic payload variants), and
// reports the progress counter the adopted process must carry.
func fuzzMigration(f *testing.F) (*sgx.CPU, *Migration, uint64) {
	f.Helper()
	k, clock, costs := newMigKernel(2048)
	img, cfg := migImage()
	p, err := Load(k, clock, costs, img, cfg)
	if err != nil {
		f.Fatal(err)
	}
	err = p.Run(func(ctx *core.Context) {
		var buf [16]byte
		for i := 0; i < p.Heap.Pages; i++ {
			for j := range buf {
				buf[j] = byte(i + j)
			}
			ctx.Write(p.Heap.Page(i), buf[:])
			ctx.Progress(1)
		}
	})
	if err != nil {
		f.Fatal(err)
	}
	progress := p.Runtime.Progress()
	mig, err := p.Migrate()
	if err != nil {
		f.Fatal(err)
	}
	return k.CPU, mig, progress
}

// FuzzMigrate drives libos.Adopt with attacker-shaped migration envelopes.
// The envelope crosses the untrusted network between machines, so the
// decode path faces fully hostile input. Properties: Adopt never panics,
// refuses everything but the genuine bytes with the documented checkpoint
// sentinel, never leaks an EPC frame on a refused adoption — and on the
// genuine bytes yields a process carrying the captured progress counter.
func FuzzMigrate(f *testing.F) {
	sealer, good, wantProgress := fuzzMigration(f)
	sealHostile := func(epoch uint64, meas [32]byte, payload []byte) []byte {
		sealed, err := sealer.SealMigrationAppend(nil, epoch, meas, payload)
		if err != nil {
			f.Fatal(err)
		}
		return sealed
	}

	// Seed corpus: the genuine envelope plus one representative of each
	// refusal class the decoder documents.
	f.Add(good.Sealed)      // authentic
	f.Add([]byte{})         // empty
	f.Add(good.Sealed[:8])  // truncated below the nonce
	f.Add(good.Sealed[:30]) // truncated inside the header
	f.Add([]byte("not a sealed migration envelope"))
	corrupt := append([]byte(nil), good.Sealed...)
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt) // flipped ciphertext byte
	header := append([]byte(nil), good.Sealed...)
	header[12] ^= 0xFF
	f.Add(header) // tampered epoch in the authenticated header
	// Authentic seal, garbage payload: authentication passes, decode fails.
	f.Add(sealHostile(1, [32]byte{}, []byte("{ garbage")))
	// Authentic seal, hostile counts: a page count far past the ciphertext.
	huge := make([]byte, 64)
	for i := range huge {
		huge[i] = 0xFF
	}
	f.Add(sealHostile(1, [32]byte{}, huge))
	// Authentic seal, wrong measurement: the rebuilt enclave can never match.
	f.Add(sealHostile(1, [32]byte{0xBA, 0xD0}, []byte{}))

	f.Fuzz(func(t *testing.T, sealed []byte) {
		k, clock, costs := newMigKernel(2048)
		before := k.CPU.EPC.FreeFrames()
		p, err := Adopt(k, clock, costs, &Migration{Sealed: sealed}, nil)
		if err != nil {
			if !errors.Is(err, sgx.ErrBadCheckpoint) {
				t.Fatalf("Adopt returned a non-checkpoint error: %v", err)
			}
			if got := k.CPU.EPC.FreeFrames(); got != before {
				t.Fatalf("refused adoption leaked EPC frames: %d -> %d", before, got)
			}
			return
		}
		// Success means the envelope authenticated, decoded and matched the
		// rebuilt measurement: only the genuine bytes can do all three.
		if !bytes.Equal(sealed, good.Sealed) {
			t.Fatalf("forged migration adopted (%d bytes)", len(sealed))
		}
		if p == nil || p.Runtime.Progress() != wantProgress {
			t.Fatalf("adopted process lost state: %+v", p)
		}
	})
}
