package libos

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"autarky/internal/core"
	"autarky/internal/hostos"
	"autarky/internal/sgx"
)

// fuzzImage is the small enclave every FuzzRestore iteration rebuilds.
func fuzzImage() (AppImage, Config) {
	img := AppImage{
		Name:      "fuzz",
		Libraries: []Library{{Name: "libfuzz.so", Pages: 1}},
		HeapPages: 4,
	}
	return img, Config{}
}

// fuzzCheckpoint builds one genuine sealed checkpoint (and the CPU that
// sealed it, for sealing hostile-but-authentic payload variants). Every
// machine in this file shares newKernel's root secret, so blobs sealed
// here authenticate on the fresh machine each fuzz iteration builds.
func fuzzCheckpoint(f *testing.F) (*hostos.Kernel, *Checkpoint) {
	f.Helper()
	k, clock, costs := newKernel()
	img, cfg := fuzzImage()
	p, err := Load(k, clock, costs, img, cfg)
	if err != nil {
		f.Fatal(err)
	}
	err = p.Run(func(ctx *core.Context) {
		var buf [8]byte
		ctx.Write(p.Heap.Page(0), buf[:])
		ctx.Progress(3)
	})
	if err != nil {
		f.Fatal(err)
	}
	cp, err := p.Checkpoint()
	if err != nil {
		f.Fatal(err)
	}
	return k, cp
}

// FuzzRestore drives libos.Restore with attacker-shaped checkpoint blobs.
// The OS holds checkpoints at rest, so the decode path faces fully hostile
// input. The property under fuzz mirrors FuzzUnseal one layer up: Restore
// never panics, never returns anything but the documented sentinel on a
// bad blob, and only succeeds on the genuine sealed bytes — in which case
// the restored process must carry the captured progress counter.
func FuzzRestore(f *testing.F) {
	sealer, good := fuzzCheckpoint(f)
	sealHostile := func(payload []byte) []byte {
		sealed, err := sealer.CPU.SealCheckpoint(payload)
		if err != nil {
			f.Fatal(err)
		}
		return sealed
	}

	// Seed corpus: the genuine blob plus one representative of each
	// documented failure refinement.
	f.Add(good.Sealed)     // authentic
	f.Add(good.Sealed[:8]) // truncated below any checkpoint
	f.Add([]byte{})        // empty
	f.Add([]byte("not a sealed blob at all"))
	corrupt := append([]byte(nil), good.Sealed...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt) // flipped ciphertext byte
	// Authentic seal, garbage payload: authentication passes, decode fails.
	f.Add(sealHostile([]byte("{ not json")))
	// Authentic seal, well-formed JSON, hostile shape: negative region.
	bad, _ := json.Marshal(checkpointPayload{Image: AppImage{HeapPages: -4}})
	f.Add(sealHostile(bad))
	// Authentic seal, valid image, wrong measurement: the restored enclave
	// can never match.
	img, cfg := fuzzImage()
	wrongM, _ := json.Marshal(checkpointPayload{Image: img, Config: cfg,
		Measurement: [32]byte{0xBA, 0xD0}})
	f.Add(sealHostile(wrongM))

	f.Fuzz(func(t *testing.T, sealed []byte) {
		k, clock, costs := newKernel()
		p, err := Restore(k, clock, costs, &Checkpoint{Sealed: sealed})
		if err != nil {
			if !errors.Is(err, sgx.ErrBadCheckpoint) {
				t.Fatalf("Restore returned a non-checkpoint error: %v", err)
			}
			return
		}
		// Success means the platform seal authenticated and the payload
		// validated: only the genuine blob can do both.
		if !bytes.Equal(sealed, good.Sealed) {
			t.Fatalf("forged checkpoint restored (%d bytes)", len(sealed))
		}
		if p == nil || p.Runtime.Progress() != 3 {
			t.Fatalf("restored process lost state: %+v", p)
		}
	})
}

// TestRestoreOntoLiveProcess: a checkpoint must not let the OS replace a
// live incarnation — Restore refuses with the kernel's liveness sentinel
// and the running process is untouched.
func TestRestoreOntoLiveProcess(t *testing.T) {
	k, clock, costs := newKernel()
	img, cfg := fuzzImage()
	p, err := Load(k, clock, costs, img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := p.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(k, clock, costs, cp); !errors.Is(err, hostos.ErrEnclaveLive) {
		t.Fatalf("Restore onto a live process: %v, want ErrEnclaveLive", err)
	}
	// The live incarnation still runs.
	if err := p.Run(func(ctx *core.Context) { ctx.Progress(1) }); err != nil {
		t.Fatalf("live process damaged by refused restore: %v", err)
	}
}
