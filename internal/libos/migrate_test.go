package libos

import (
	"bytes"
	"errors"
	"testing"

	"autarky/internal/core"
	"autarky/internal/hostos"
	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/pagestore"
	"autarky/internal/sgx"
	"autarky/internal/sim"
)

// newMigKernel builds a machine with a chosen EPC size, sharing newKernel's
// root secret so envelopes sealed on one machine authenticate on another —
// the cross-machine handoff the migration protocol exists for.
func newMigKernel(epcFrames int) (*hostos.Kernel, *sim.Clock, *sim.Costs) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	pt := mmu.NewPageTable(clock, &costs)
	tlb := mmu.NewTLB(16, 4, clock, &costs)
	epc := sgx.NewEPC(0x1000, epcFrames)
	reg := sgx.NewRegularMemory(1 << 30)
	cpu := sgx.NewCPU(clock, &costs, tlb, pt, epc, reg, []byte("libos-test"))
	k := hostos.NewKernel(cpu, pt, pagestore.NewStore(), clock, &costs)
	return k, clock, &costs
}

// migImage is a self-paging workload whose heap exceeds its quota, so the
// captured state includes live anti-replay versions (evicted pages), the
// hard part of the handoff.
func migImage() (AppImage, Config) {
	img := AppImage{
		Name:      "migrant",
		Libraries: []Library{{Name: "libmig.so", Pages: 2}},
		DataPages: 4,
		HeapPages: 32,
	}
	cfg := Config{
		SelfPaging:           true,
		Policy:               PolicyRateLimit,
		RateLimitPerProgress: 1000,
		RateLimitBurst:       1000,
		QuotaPages:           24,
	}
	return img, cfg
}

// runMigrant loads the image and dirties every heap page with a
// recognizable pattern, advancing the progress counter as it goes.
func runMigrant(t testing.TB, k *hostos.Kernel, clock *sim.Clock, costs *sim.Costs) *Process {
	t.Helper()
	img, cfg := migImage()
	p, err := Load(k, clock, costs, img, cfg)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	err = p.Run(func(ctx *core.Context) {
		var buf [16]byte
		for i := 0; i < p.Heap.Pages; i++ {
			for j := range buf {
				buf[j] = byte(i + j)
			}
			ctx.Write(p.Heap.Page(i), buf[:])
			ctx.Progress(1)
		}
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return p
}

// TestMigrateAdoptRoundTrip is the tentpole's core property: a process
// migrated off one machine resumes on a machine with different EPC geometry
// and cost model carrying its exact writable state, progress counter and
// freshness epoch, while the source incarnation is permanently retired.
func TestMigrateAdoptRoundTrip(t *testing.T) {
	k1, clock1, costs1 := newMigKernel(2048)
	p1 := runMigrant(t, k1, clock1, costs1)
	wantProgress := p1.Runtime.Progress()

	counters := sgx.NewCounterService()
	mig, err := p1.Migrate()
	if err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if len(mig.Sealed) == 0 {
		t.Fatal("empty envelope from a successful Migrate")
	}

	// The source incarnation must be gone: dead with the migration reason,
	// tombstoned in its kernel.
	if dead, reason, _ := p1.Proc.E.Dead(); !dead || reason != sgx.TerminateMigrated {
		t.Fatalf("source enclave dead=%v reason=%v, want retired as migrated", dead, reason)
	}
	if err := p1.Run(func(*core.Context) {}); !errors.Is(err, hostos.ErrMigrated) {
		t.Fatalf("running the migrated-away source: %v, want ErrMigrated", err)
	}
	if !errors.Is(p1.Run(func(*core.Context) {}), hostos.ErrNotLoaded) {
		t.Fatal("ErrMigrated must refine ErrNotLoaded for existing callers")
	}

	// Destination: smaller EPC, pricier software crypto — a genuinely
	// different machine.
	k2, clock2, costs2 := newMigKernel(512)
	costs2.SWEncryptPage *= 2
	costs2.SWDecryptPage *= 2
	p2, err := Adopt(k2, clock2, costs2, mig, counters)
	if err != nil {
		t.Fatalf("Adopt: %v", err)
	}
	if got := p2.Runtime.Progress(); got != wantProgress {
		t.Fatalf("adopted progress %d, want %d", got, wantProgress)
	}
	if got := p2.Proc.E.MigrationEpoch(); got != 1 {
		t.Fatalf("adopted migration epoch %d, want 1", got)
	}
	if got := counters.Committed(p2.Proc.E.Measurement()); got != 1 {
		t.Fatalf("committed counter %d, want 1", got)
	}

	// Every dirtied page made the journey byte-for-byte.
	err = p2.Run(func(ctx *core.Context) {
		var got, want [16]byte
		for i := 0; i < p2.Heap.Pages; i++ {
			for j := range want {
				want[j] = byte(i + j)
			}
			ctx.Read(p2.Heap.Page(i), got[:])
			if !bytes.Equal(got[:], want[:]) {
				t.Errorf("heap page %d: got %x want %x", i, got, want)
				return
			}
		}
	})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}

	m1, m2 := metrics.Of(clock1), metrics.Of(clock2)
	if m1.Count(metrics.CntMigrations) != 1 || m1.Count(metrics.CntMigrationPages) == 0 {
		t.Fatal("source migration counters not recorded")
	}
	if m2.Count(metrics.CntAdopts) != 1 {
		t.Fatal("destination adopt counter not recorded")
	}
}

// TestMigrateChain verifies the freshness epoch advances across repeated
// hops: machine A -> B -> C, each adopt strictly newer than the last.
func TestMigrateChain(t *testing.T) {
	counters := sgx.NewCounterService()
	k, clock, costs := newMigKernel(2048)
	p := runMigrant(t, k, clock, costs)
	for hop := 1; hop <= 3; hop++ {
		mig, err := p.Migrate()
		if err != nil {
			t.Fatalf("hop %d Migrate: %v", hop, err)
		}
		k, clock, costs = newMigKernel(2048 - 256*hop)
		p, err = Adopt(k, clock, costs, mig, counters)
		if err != nil {
			t.Fatalf("hop %d Adopt: %v", hop, err)
		}
		if got := p.Proc.E.MigrationEpoch(); got != uint64(hop) {
			t.Fatalf("hop %d: epoch %d", hop, got)
		}
	}
}

// TestMigrationMisuse is the migration analogue of the hostos out-of-order
// suite: every way of driving the handshake out of protocol hits its
// documented sentinel, and the adopt-side failures consume no EPC frames.
func TestMigrationMisuse(t *testing.T) {
	// One genuine envelope to mutate, plus its (consumed) counter service.
	srcK, srcClock, srcCosts := newMigKernel(2048)
	src := runMigrant(t, srcK, srcClock, srcCosts)
	mig, err := src.Migrate()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		want error
		run  func(t *testing.T) error
	}{
		{"quiesce-twice", hostos.ErrMigrated, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			p := runMigrant(t, k, clock, costs)
			if _, err := p.Migrate(); err != nil {
				t.Fatal(err)
			}
			_, err := p.Migrate()
			return err
		}},
		{"adopt-stale-counter", sgx.ErrStaleMigration, func(t *testing.T) error {
			counters := sgx.NewCounterService()
			k, clock, costs := newMigKernel(2048)
			if _, err := Adopt(k, clock, costs, mig, counters); err != nil {
				t.Fatal(err)
			}
			// Same envelope, second machine, same counter service: replay.
			k2, clock2, costs2 := newMigKernel(2048)
			_, err := Adopt(k2, clock2, costs2, mig, counters)
			return err
		}},
		{"adopt-while-running", hostos.ErrEnclaveLive, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			runMigrant(t, k, clock, costs) // live enclave at the same base
			_, err := Adopt(k, clock, costs, mig, sgx.NewCounterService())
			return err
		}},
		{"adopt-nil", sgx.ErrBadCheckpoint, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			_, err := Adopt(k, clock, costs, nil, sgx.NewCounterService())
			return err
		}},
		{"adopt-empty", sgx.ErrBadCheckpoint, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			_, err := Adopt(k, clock, costs, &Migration{}, sgx.NewCounterService())
			return err
		}},
		{"adopt-truncated", sgx.ErrBadCheckpoint, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			_, err := Adopt(k, clock, costs, &Migration{Sealed: mig.Sealed[:30]}, sgx.NewCounterService())
			return err
		}},
		{"adopt-tampered-epoch", sgx.ErrBadCheckpoint, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			forged := append([]byte(nil), mig.Sealed...)
			forged[12]++ // epoch is authenticated via AAD; bumping it voids the seal
			_, err := Adopt(k, clock, costs, &Migration{Sealed: forged}, sgx.NewCounterService())
			return err
		}},
		{"adopt-tampered-measurement", sgx.ErrBadCheckpoint, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			forged := append([]byte(nil), mig.Sealed...)
			forged[20] ^= 0xFF
			_, err := Adopt(k, clock, costs, &Migration{Sealed: forged}, sgx.NewCounterService())
			return err
		}},
		{"adopt-tampered-ciphertext", sgx.ErrBadCheckpoint, func(t *testing.T) error {
			k, clock, costs := newMigKernel(2048)
			forged := append([]byte(nil), mig.Sealed...)
			forged[len(forged)-1] ^= 0x01
			_, err := Adopt(k, clock, costs, &Migration{Sealed: forged}, sgx.NewCounterService())
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatalf("no error, want %v", tc.want)
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestAdoptFailureLeaksNoEPC: a rejected adopt must leave the destination
// EPC exactly as it found it — a leak here would let an attacker exhaust a
// machine with garbage envelopes.
func TestAdoptFailureLeaksNoEPC(t *testing.T) {
	srcK, srcClock, srcCosts := newMigKernel(2048)
	src := runMigrant(t, srcK, srcClock, srcCosts)
	mig, err := src.Migrate()
	if err != nil {
		t.Fatal(err)
	}
	k, clock, costs := newMigKernel(512)
	free := k.CPU.EPC.FreeFrames()
	forged := append([]byte(nil), mig.Sealed...)
	forged[len(forged)-1] ^= 0x01
	for _, bad := range []*Migration{nil, {}, {Sealed: mig.Sealed[:16]}, {Sealed: forged}} {
		if _, err := Adopt(k, clock, costs, bad, sgx.NewCounterService()); err == nil {
			t.Fatal("hostile envelope adopted")
		}
	}
	if got := k.CPU.EPC.FreeFrames(); got != free {
		t.Fatalf("EPC frames leaked by rejected adopts: %d -> %d", free, got)
	}
}

// TestMigrationEncodeDeterministic: identical state must encode to
// identical bytes (the version table is explicitly sorted), or fleet runs
// could diverge across -jobs orderings.
func TestMigrationEncodeDeterministic(t *testing.T) {
	k, clock, costs := newMigKernel(2048)
	p := runMigrant(t, k, clock, costs)
	if p.migCapture == nil {
		p.migCapture = p.captureWritable
	}
	if err := p.Run(p.migCapture); err != nil {
		t.Fatal(err)
	}
	a := p.encodeMigration(nil)
	b := p.encodeMigration(nil)
	if !bytes.Equal(a, b) {
		t.Fatal("same state encoded to different bytes")
	}
	// And the codec round-trips.
	payload, err := decodeMigration(a)
	if err != nil {
		t.Fatalf("decode of genuine payload: %v", err)
	}
	if payload.Progress != p.Runtime.Progress() {
		t.Fatalf("round-trip progress %d, want %d", payload.Progress, p.Runtime.Progress())
	}
	if len(payload.Pages) != len(p.migPageVAs) {
		t.Fatalf("round-trip pages %d, want %d", len(payload.Pages), len(p.migPageVAs))
	}
	if err := validatePayload(payload); err != nil {
		t.Fatalf("genuine payload failed validation: %v", err)
	}
}

// TestMigrationSealZeroAlloc gates the quiesce hot path per the repo's
// allocation discipline: once the scratch buffers are warm, encode+seal
// allocates nothing. (Capture crosses the enclave boundary and is excluded
// — it is charged, not allocation-gated.)
func TestMigrationSealZeroAlloc(t *testing.T) {
	k, clock, costs := newMigKernel(2048)
	p := runMigrant(t, k, clock, costs)
	if err := p.Run(p.captureWritable); err != nil {
		t.Fatal(err)
	}
	encodeAndSeal := func() {
		p.migPlain = p.encodeMigration(p.migPlain[:0])
		sealed, err := k.CPU.SealMigrationAppend(p.migSealed[:0],
			p.Proc.E.MigrationEpoch()+1, p.Proc.E.Measurement(), p.migPlain)
		if err != nil {
			t.Fatal(err)
		}
		p.migSealed = sealed
	}
	encodeAndSeal() // warm the scratch buffers and the cached AEAD
	if allocs := testing.AllocsPerRun(100, encodeAndSeal); allocs != 0 {
		t.Fatalf("migration encode+seal allocates %.1f/op, want 0", allocs)
	}
}
