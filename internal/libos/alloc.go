package libos

import (
	"fmt"
	"sort"

	"autarky/internal/cluster"
	"autarky/internal/mmu"
)

// Allocator is the libOS heap page allocator, extended with Autarky's
// automatic data clustering (paper §5.2.3): each allocated page is eagerly
// added to the current cluster until it reaches the configured size, at
// which point a new cluster starts; when enough pages are freed, clusters
// are merged to keep them near-full.
type Allocator struct {
	p           *Process
	heap        Region
	clusterSize int // 0 = automatic clustering disabled

	next    int   // bump pointer (page index into heap)
	free    []int // freed page indexes, reused before bumping
	current cluster.ID
	fill    int // pages in the current cluster

	allocated map[int]cluster.ID // page index -> cluster (NoID if unclustered)
}

func newAllocator(p *Process, heap Region, clusterSize int) *Allocator {
	return &Allocator{
		p:           p,
		heap:        heap,
		clusterSize: clusterSize,
		allocated:   make(map[int]cluster.ID),
	}
}

// ClusterSize reports the automatic data cluster size (0 when disabled).
func (a *Allocator) ClusterSize() int { return a.clusterSize }

// AllocPages allocates n heap pages and returns their base addresses. With
// automatic clustering enabled, each page joins the eagerly filled current
// cluster.
func (a *Allocator) AllocPages(n int) ([]mmu.VAddr, error) {
	if n <= 0 {
		return nil, fmt.Errorf("libos: AllocPages(%d)", n)
	}
	if avail := len(a.free) + (a.heap.Pages - a.next); n > avail {
		return nil, fmt.Errorf("%w: heap exhausted (%d pages requested, %d available)", ErrQuotaExceeded, n, avail)
	}
	out := make([]mmu.VAddr, 0, n)
	for i := 0; i < n; i++ {
		idx, err := a.takePage()
		if err != nil {
			return nil, err
		}
		va := a.heap.Page(idx)
		cid := cluster.NoID
		if a.clusterSize > 0 {
			cid = a.clusterFor()
			if err := a.p.Reg.AddPage(cid, va.VPN()); err != nil {
				return nil, err
			}
			a.fill++
		}
		a.allocated[idx] = cid
		out = append(out, va)
	}
	return out, nil
}

// Alloc allocates enough pages for size bytes and returns the base address
// of a contiguous range when possible; otherwise it errors (workloads in
// this repository allocate page-granular objects).
func (a *Allocator) Alloc(size uint64) (mmu.VAddr, error) {
	n := int(mmu.PagesIn(size))
	// Contiguity: only the bump path guarantees it; require enough fresh room.
	if a.next+n > a.heap.Pages {
		return 0, fmt.Errorf("%w: heap exhausted (%d pages requested, %d free-bump)", ErrQuotaExceeded, n, a.heap.Pages-a.next)
	}
	start := a.next
	for i := 0; i < n; i++ {
		idx := a.next
		a.next++
		va := a.heap.Page(idx)
		cid := cluster.NoID
		if a.clusterSize > 0 {
			cid = a.clusterFor()
			if err := a.p.Reg.AddPage(cid, va.VPN()); err != nil {
				return 0, err
			}
			a.fill++
		}
		a.allocated[idx] = cid
	}
	return a.heap.Page(start), nil
}

func (a *Allocator) takePage() (int, error) {
	if len(a.free) > 0 {
		idx := a.free[len(a.free)-1]
		a.free = a.free[:len(a.free)-1]
		return idx, nil
	}
	if a.next >= a.heap.Pages {
		return 0, fmt.Errorf("%w: heap exhausted (%d pages)", ErrQuotaExceeded, a.heap.Pages)
	}
	idx := a.next
	a.next++
	return idx, nil
}

func (a *Allocator) clusterFor() cluster.ID {
	if a.current == cluster.NoID || a.fill >= a.clusterSize {
		a.current = a.p.Reg.NewCluster(a.clusterSize)
		a.fill = 0
	}
	return a.current
}

// FreePages returns pages to the allocator, removing them from their
// clusters, and merges under-full clusters to keep clusters near capacity.
func (a *Allocator) FreePages(pages []mmu.VAddr) error {
	for _, va := range pages {
		if !a.heap.Contains(va) {
			return fmt.Errorf("libos: freeing non-heap page %s", va)
		}
		idx := int((va - a.heap.Base) / mmu.PageSize)
		cid, ok := a.allocated[idx]
		if !ok {
			return fmt.Errorf("libos: double free of %s", va)
		}
		if cid != cluster.NoID {
			if err := a.p.Reg.RemovePage(cid, va.VPN()); err != nil {
				return err
			}
			if cid == a.current && a.fill > 0 {
				a.fill--
			}
		}
		delete(a.allocated, idx)
		a.free = append(a.free, idx)
	}
	if a.clusterSize > 0 {
		return a.mergeClusters()
	}
	return nil
}

// mergeClusters coalesces under-half-full data clusters pairwise so the
// registry stays near-full ("when enough pages are freed, the libOS
// allocator merges clusters", §5.2.3).
func (a *Allocator) mergeClusters() error {
	// Collect data clusters (those referenced by the allocator) that are
	// under half capacity.
	counts := make(map[cluster.ID]int)
	for _, cid := range a.allocated {
		if cid != cluster.NoID {
			counts[cid]++
		}
	}
	var sparse []cluster.ID
	for cid, n := range counts {
		if n*2 < a.clusterSize && cid != a.current {
			sparse = append(sparse, cid)
		}
	}
	if len(sparse) < 2 {
		return nil
	}
	sort.Slice(sparse, func(i, j int) bool { return sparse[i] < sparse[j] })
	// Merge pairs: move pages of the second into the first while capacity
	// allows.
	for i := 0; i+1 < len(sparse); i += 2 {
		dst, src := sparse[i], sparse[i+1]
		srcCl, ok := a.p.Reg.Cluster(src)
		if !ok {
			continue
		}
		dstCl, _ := a.p.Reg.Cluster(dst)
		for _, vpn := range srcCl.Pages() {
			if dstCl.Len() >= a.clusterSize {
				break
			}
			if err := a.p.Reg.RemovePage(src, vpn); err != nil {
				return err
			}
			if err := a.p.Reg.AddPage(dst, vpn); err != nil {
				return err
			}
			idx := int((mmu.PageOf(vpn) - a.heap.Base) / mmu.PageSize)
			a.allocated[idx] = dst
		}
	}
	return nil
}

// PageCluster reports which cluster a heap page belongs to.
func (a *Allocator) PageCluster(va mmu.VAddr) (cluster.ID, bool) {
	if !a.heap.Contains(va) {
		return cluster.NoID, false
	}
	cid, ok := a.allocated[int((va-a.heap.Base)/mmu.PageSize)]
	return cid, ok && cid != cluster.NoID
}

// Allocated reports the number of live heap pages.
func (a *Allocator) Allocated() int { return len(a.allocated) }
