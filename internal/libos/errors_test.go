package libos

import (
	"errors"
	"testing"

	"autarky/internal/core"
)

// validBase is a configuration that must pass validation — the quickstart
// shape every example uses.
func validBase() Config {
	return Config{
		SelfPaging:     true,
		Policy:         PolicyRateLimit,
		RateLimitBurst: 1 << 30,
		QuotaPages:     48,
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string // "" = must be valid
	}{
		{"zero config", func(c *Config) { *c = Config{} }, ""},
		{"quickstart", func(c *Config) {}, ""},
		{"legacy with rate params (E9 baseline)", func(c *Config) { c.SelfPaging = false }, ""},
		{"clusters with rate limit", func(c *Config) { c.Policy = PolicyClusters; c.DataClusterPages = 10 }, ""},
		{"all optimizations via ElideAEX", func(c *Config) { c.ElideAEX = true }, ""},
		{"in-enclave resume alone", func(c *Config) { c.InEnclaveResume = true }, ""},
		{"sgx2", func(c *Config) { c.Mech = core.MechSGX2 }, ""},

		{"negative quota", func(c *Config) { c.QuotaPages = -1 }, "QuotaPages"},
		{"negative NSSA", func(c *Config) { c.NSSA = -3 }, "NSSA"},
		{"policy below range", func(c *Config) { c.Policy = PolicyKind(-1) }, "Policy"},
		{"policy above range", func(c *Config) { c.Policy = PolicyORAM + 1 }, "Policy"},
		{"unknown mech", func(c *Config) { c.Mech = core.Mech(7) }, "Mech"},
		{"negative rate", func(c *Config) { c.RateLimitPerProgress = -0.5 }, "RateLimitPerProgress"},
		{"negative cluster size", func(c *Config) { c.DataClusterPages = -4 }, "DataClusterPages"},
		{"resume without self-paging", func(c *Config) { c.SelfPaging = false; c.InEnclaveResume = true }, "InEnclaveResume"},
		{"elide without self-paging", func(c *Config) { c.SelfPaging = false; c.ElideAEX = true }, "ElideAEX"},
		{"code clusters without self-paging", func(c *Config) { c.SelfPaging = false; c.CodeClusters = true }, "CodeClusters"},
		{"pin data without self-paging", func(c *Config) { c.SelfPaging = false; c.PinData = true }, "PinData"},
		{"resume and elide together", func(c *Config) { c.InEnclaveResume = true; c.ElideAEX = true }, "InEnclaveResume"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validBase()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.field == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("error does not unwrap to ErrBadConfig: %v", err)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error is not a *ConfigError: %v", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("rejected field %q, want %q (%v)", ce.Field, tc.field, err)
			}
		})
	}
}

func errTestImage() AppImage {
	return AppImage{
		Name:      "errs",
		Libraries: []Library{{Name: "liberrs.so", Pages: 2}},
		HeapPages: 8,
	}
}

func TestLoadRejectsBadConfig(t *testing.T) {
	k, clock, costs := newKernel()
	cfg := validBase()
	cfg.QuotaPages = -1
	_, err := Load(k, clock, costs, errTestImage(), cfg)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("Load error = %v, want ErrBadConfig", err)
	}
}

func TestAllocQuotaErrors(t *testing.T) {
	p := load(t, errTestImage(), validBase())
	if _, err := p.Alloc.AllocPages(9); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-allocation error = %v, want ErrQuotaExceeded", err)
	}
	if _, err := p.Alloc.Alloc(9 * 4096); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-Alloc error = %v, want ErrQuotaExceeded", err)
	}
}
