package libos

import "autarky/internal/core"

// Handler is one enclave-resident operation of a servable application: it
// runs inside the enclave (ctx is the trusted execution context, so every
// memory touch goes through the self-paging machinery) and maps a request
// argument to a reply value. A non-nil error becomes an error reply on the
// wire; errors matching the libOS taxonomy (ErrQuotaExceeded,
// core.ErrRateLimited) keep their identity across the channel.
type Handler func(ctx *core.Context, arg uint64) (uint64, error)

// namedHandler keeps registration order: operation numbering on the wire is
// the registration order, so it must be deterministic.
type namedHandler struct {
	name string
	h    Handler
}

// Handle registers (or replaces) the handler for op. Registration must
// finish before the service loop starts serving — the operation table is
// frozen when the first frame is dispatched. Handlers do not survive a
// checkpoint/restore; re-register them on the restored process.
func (p *Process) Handle(op string, h Handler) {
	for i := range p.handlers {
		if p.handlers[i].name == op {
			p.handlers[i].h = h
			return
		}
	}
	p.handlers = append(p.handlers, namedHandler{name: op, h: h})
}

// Handler returns the handler registered for op.
func (p *Process) Handler(op string) (Handler, bool) {
	for i := range p.handlers {
		if p.handlers[i].name == op {
			return p.handlers[i].h, true
		}
	}
	return nil, false
}

// HandlerNames returns the registered operation names in registration
// order — the wire numbering of the service protocol.
func (p *Process) HandlerNames() []string {
	out := make([]string, len(p.handlers))
	for i := range p.handlers {
		out[i] = p.handlers[i].name
	}
	return out
}
