package mmu

import (
	"autarky/internal/metrics"
	"autarky/internal/sim"
)

// TLBEntry caches one translation. EnclaveID tags entries installed while
// executing in enclave mode so they can be flushed on enclave exit and so
// A/D writeback can be suppressed for them (paper §5.1.4: "TLB entries would
// need to be flagged as holding enclave translations").
type TLBEntry struct {
	valid     bool
	vpn       uint64
	pfn       PFN
	perms     Perms
	epc       bool
	enclaveID uint64 // 0 for non-enclave translations
	writable  bool   // D bit was set at fill time; stores may reuse the entry
	lastUse   uint64 // LRU stamp
	epoch     uint64 // flush epoch at fill time; stale epoch means flushed
}

// TLB is a set-associative translation lookaside buffer. SGX flushes it on
// every enclave entry and exit (paper §2.1), which the CPU layer invokes.
type TLB struct {
	sets    [][]TLBEntry
	nsets   int
	ways    int
	useTick uint64
	clock   *sim.Clock
	costs   *sim.Costs
	m       *metrics.Metrics

	// epoch implements O(1) full flushes: entries are live only when their
	// fill epoch matches, so FlushAll just bumps the counter instead of
	// touching every way. SGX flushes on every enclave crossing, which made
	// the eager loop one of the hottest paths in the whole simulator.
	epoch uint64

	// Statistics.
	Hits    uint64
	Misses  uint64
	Fills   uint64
	Flushes uint64
}

// NewTLB returns a TLB with nsets sets of ways entries each. nsets must be a
// power of two.
func NewTLB(nsets, ways int, clock *sim.Clock, costs *sim.Costs) *TLB {
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("mmu: TLB set count must be a positive power of two")
	}
	if ways <= 0 {
		panic("mmu: TLB ways must be positive")
	}
	sets := make([][]TLBEntry, nsets)
	for i := range sets {
		sets[i] = make([]TLBEntry, ways)
	}
	return &TLB{sets: sets, nsets: nsets, ways: ways, clock: clock, costs: costs, m: metrics.Of(clock)}
}

// Sets reports the number of sets in the TLB's geometry.
func (t *TLB) Sets() int { return t.nsets }

// Ways reports the TLB's associativity.
func (t *TLB) Ways() int { return t.ways }

func (t *TLB) set(vpn uint64) []TLBEntry {
	return t.sets[vpn&uint64(t.nsets-1)]
}

// live reports whether an entry survived the most recent full flush.
func (t *TLB) live(e *TLBEntry) bool {
	return e.valid && e.epoch == t.epoch
}

// Lookup searches for a cached translation admitting the access. A store
// through an entry whose D bit was clear at fill time misses (hardware must
// re-walk to set D), matching x86 behaviour and preserving the dirty-bit
// side channel for the vanilla model.
func (t *TLB) Lookup(va VAddr, at AccessType) (*TLBEntry, bool) {
	// Lookup latency is part of the access pipeline; it inherits the
	// ambient category (compute for workload accesses).
	t.clock.ChargeAmbient(t.costs.TLBHit)
	vpn := va.VPN()
	set := t.set(vpn)
	for i := range set {
		e := &set[i]
		if t.live(e) && e.vpn == vpn && e.perms.Allows(at) {
			if at == AccessWrite && !e.writable {
				break // must re-walk to set the dirty bit
			}
			t.useTick++
			e.lastUse = t.useTick
			t.Hits++
			t.m.Inc(metrics.CntTLBHits)
			return e, true
		}
	}
	t.Misses++
	t.m.Inc(metrics.CntTLBMisses)
	return nil, false
}

// Fill installs a translation, evicting the LRU way of the set.
func (t *TLB) Fill(va VAddr, pte PTE, enclaveID uint64, writable bool) {
	vpn := va.VPN()
	set := t.set(vpn)
	victim := 0
	for i := range set {
		if !t.live(&set[i]) {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	t.useTick++
	set[victim] = TLBEntry{
		valid:     true,
		vpn:       vpn,
		pfn:       pte.PFN,
		perms:     pte.Perms,
		epc:       pte.EPC,
		enclaveID: enclaveID,
		writable:  writable,
		lastUse:   t.useTick,
		epoch:     t.epoch,
	}
	t.Fills++
	t.m.Inc(metrics.CntTLBFills)
}

// FlushAll invalidates every entry (enclave entry/exit). It is O(1): the
// flush epoch advances and every existing entry becomes stale.
func (t *TLB) FlushAll() {
	t.epoch++
	t.Flushes++
	t.m.Inc(metrics.CntTLBFlushes)
	// Flushes ride on enclave transitions; the ambient category is the
	// transition's (compute at top level, fault-handling on the fault path).
	t.clock.ChargeAmbient(t.costs.TLBFlushLocal)
}

// Invalidate drops any entry for va (INVLPG / shootdown target side).
func (t *TLB) Invalidate(va VAddr) {
	vpn := va.VPN()
	set := t.set(vpn)
	for i := range set {
		if t.live(&set[i]) && set[i].vpn == vpn {
			set[i].valid = false
		}
	}
}

// Shootdown models a remote TLB shootdown initiated by the OS: it charges
// the IPI cost and invalidates the page on this (single-hart) machine.
func (t *TLB) Shootdown(va VAddr) {
	// Shootdowns only happen as part of the eviction protocol.
	t.clock.ChargeAs(sim.CatPaging, t.costs.TLBShootdown)
	t.m.Inc(metrics.CntTLBShootdowns)
	t.Invalidate(va)
}

// PFN returns the cached frame for an entry.
func (e *TLBEntry) PFN() PFN { return e.pfn }

// EPC reports whether the cached translation targets an EPC frame.
func (e *TLBEntry) EPC() bool { return e.epc }

// EnclaveID returns the enclave tag of the entry (0 for normal memory).
func (e *TLBEntry) EnclaveID() uint64 { return e.enclaveID }
