package mmu

import (
	"testing"
	"testing/quick"

	"autarky/internal/sim"
)

func newPT() (*PageTable, *sim.Clock) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	return NewPageTable(clock, &costs), clock
}

func TestVAddrHelpers(t *testing.T) {
	a := VAddr(0x12345)
	if a.VPN() != 0x12 {
		t.Errorf("VPN = %#x", a.VPN())
	}
	if a.PageBase() != 0x12000 {
		t.Errorf("PageBase = %s", a.PageBase())
	}
	if a.Offset() != 0x345 {
		t.Errorf("Offset = %#x", a.Offset())
	}
	if PageOf(0x12) != 0x12000 {
		t.Errorf("PageOf = %s", PageOf(0x12))
	}
}

func TestPagesIn(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 4096: 1, 4097: 2, 8192: 2}
	for n, want := range cases {
		if got := PagesIn(n); got != want {
			t.Errorf("PagesIn(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPermsAllows(t *testing.T) {
	if !PermRW.Allows(AccessRead) || !PermRW.Allows(AccessWrite) || PermRW.Allows(AccessExec) {
		t.Error("PermRW semantics wrong")
	}
	if !PermRX.Allows(AccessExec) || PermRX.Allows(AccessWrite) {
		t.Error("PermRX semantics wrong")
	}
}

func TestPermsString(t *testing.T) {
	if s := PermRWX.String(); s != "rwxu" {
		t.Errorf("PermRWX = %q", s)
	}
	if s := Perms(0).String(); s != "----" {
		t.Errorf("zero perms = %q", s)
	}
}

func TestMapWalkRoundTrip(t *testing.T) {
	pt, _ := newPT()
	va := VAddr(0x4000_0000)
	pt.Map(va, 42, PermRW, false)
	wr, fault := pt.Walk(va, AccessRead)
	if fault != nil {
		t.Fatalf("walk faulted: %v", fault)
	}
	if wr.PTE.PFN != 42 || wr.PTE.EPC {
		t.Fatalf("wrong PTE: %+v", wr.PTE)
	}
}

func TestWalkNotPresent(t *testing.T) {
	pt, _ := newPT()
	_, fault := pt.Walk(0x1000, AccessRead)
	if fault == nil || !fault.NotPresent {
		t.Fatalf("expected not-present fault, got %v", fault)
	}
}

func TestWalkProtection(t *testing.T) {
	pt, _ := newPT()
	va := VAddr(0x2000)
	pt.Map(va, 7, PermRead|PermUser, false)
	_, fault := pt.Walk(va, AccessWrite)
	if fault == nil || !fault.Protection || fault.NotPresent {
		t.Fatalf("expected protection fault, got %v", fault)
	}
	if _, f := pt.Walk(va, AccessRead); f != nil {
		t.Fatalf("read should succeed: %v", f)
	}
}

func TestWalkChargesCycles(t *testing.T) {
	pt, clock := newPT()
	pt.Map(0x1000, 1, PermRW, false)
	before := clock.Cycles()
	pt.Walk(0x1000, AccessRead)
	costs := sim.DefaultCosts()
	if got := clock.Cycles() - before; got != 4*costs.PTWalkLevel {
		t.Fatalf("walk charged %d cycles, want %d", got, 4*costs.PTWalkLevel)
	}
}

func TestWalkDoesNotSetAD(t *testing.T) {
	pt, _ := newPT()
	va := VAddr(0x3000)
	pt.Map(va, 3, PermRW, false)
	pt.Walk(va, AccessWrite)
	pte, _ := pt.Get(va)
	if pte.Accessed || pte.Dirty {
		t.Fatal("Walk must not write A/D; that is the CPU layer's decision")
	}
}

func TestSetADAndClear(t *testing.T) {
	pt, _ := newPT()
	va := VAddr(0x5000)
	pt.Map(va, 5, PermRW, false)
	pt.SetAD(va, true)
	pte, _ := pt.Get(va)
	if !pte.Accessed || !pte.Dirty {
		t.Fatal("SetAD failed")
	}
	pt.ClearAccessed(va)
	pt.ClearDirty(va)
	pte, _ = pt.Get(va)
	if pte.Accessed || pte.Dirty {
		t.Fatal("clear failed")
	}
}

func TestUnmapReturnsOldEntry(t *testing.T) {
	pt, _ := newPT()
	va := VAddr(0x7000)
	pt.Map(va, 9, PermRX, true)
	old := pt.Unmap(va)
	if !old.Present || old.PFN != 9 || !old.EPC {
		t.Fatalf("old = %+v", old)
	}
	if _, fault := pt.Walk(va, AccessRead); fault == nil {
		t.Fatal("walk after unmap must fault")
	}
	if empty := pt.Unmap(0x9999000); empty.Present {
		t.Fatal("unmap of unmapped returned present")
	}
}

func TestSetPresentTogglesMappedCount(t *testing.T) {
	pt, _ := newPT()
	va := VAddr(0x8000)
	pt.Map(va, 1, PermRW, false)
	if pt.Mapped() != 1 {
		t.Fatalf("Mapped = %d", pt.Mapped())
	}
	pt.SetPresent(va, false)
	if pt.Mapped() != 0 {
		t.Fatalf("Mapped after clear = %d", pt.Mapped())
	}
	pt.SetPresent(va, true)
	if pt.Mapped() != 1 {
		t.Fatalf("Mapped after restore = %d", pt.Mapped())
	}
	if pt.SetPresent(0xdead000, true) {
		t.Fatal("SetPresent on missing entry returned true")
	}
}

func TestMapADInitialState(t *testing.T) {
	pt, _ := newPT()
	va := VAddr(0xa000)
	pt.MapAD(va, 4, PermRW, true, true, true)
	pte, _ := pt.Get(va)
	if !pte.Accessed || !pte.Dirty || !pte.EPC {
		t.Fatalf("MapAD state: %+v", pte)
	}
}

func TestSetPermsRequiresPresent(t *testing.T) {
	pt, _ := newPT()
	if pt.SetPerms(0x1000, PermRead) {
		t.Fatal("SetPerms on missing entry returned true")
	}
	pt.Map(0x1000, 1, PermRWX, false)
	if !pt.SetPerms(0x1000, PermRead|PermUser) {
		t.Fatal("SetPerms failed")
	}
	if _, fault := pt.Walk(0x1000, AccessWrite); fault == nil {
		t.Fatal("write after perm reduction should fault")
	}
}

func TestPageTablePropertyRoundTrip(t *testing.T) {
	pt, _ := newPT()
	if err := quick.Check(func(vpnRaw uint32, pfnRaw uint16) bool {
		vpn := uint64(vpnRaw)
		va := PageOf(vpn)
		pfn := PFN(pfnRaw) + 1
		pt.Map(va, pfn, PermRW, false)
		wr, fault := pt.Walk(va, AccessRead)
		return fault == nil && wr.PTE.PFN == pfn
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- TLB ---

func newTLB() (*TLB, *sim.Clock) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	return NewTLB(16, 2, clock, &costs), clock
}

func TestTLBMissThenHit(t *testing.T) {
	tlb, _ := newTLB()
	va := VAddr(0x1000)
	if _, ok := tlb.Lookup(va, AccessRead); ok {
		t.Fatal("empty TLB hit")
	}
	tlb.Fill(va, PTE{Present: true, Perms: PermRW, PFN: 8}, 0, true)
	e, ok := tlb.Lookup(va, AccessRead)
	if !ok || e.PFN() != 8 {
		t.Fatalf("hit failed: %v %v", e, ok)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBWriteRequiresWritableEntry(t *testing.T) {
	tlb, _ := newTLB()
	va := VAddr(0x2000)
	// Filled from a read with D clear: not writable.
	tlb.Fill(va, PTE{Present: true, Perms: PermRW, PFN: 1}, 0, false)
	if _, ok := tlb.Lookup(va, AccessWrite); ok {
		t.Fatal("store must miss on a non-writable entry (D-bit discipline)")
	}
	if _, ok := tlb.Lookup(va, AccessRead); !ok {
		t.Fatal("read should hit")
	}
}

func TestTLBPermissionCheck(t *testing.T) {
	tlb, _ := newTLB()
	va := VAddr(0x3000)
	tlb.Fill(va, PTE{Present: true, Perms: PermRead | PermUser, PFN: 1}, 0, true)
	if _, ok := tlb.Lookup(va, AccessExec); ok {
		t.Fatal("exec hit on non-exec entry")
	}
}

func TestTLBFlushAll(t *testing.T) {
	tlb, clock := newTLB()
	tlb.Fill(0x1000, PTE{Present: true, Perms: PermRW, PFN: 1}, 1, true)
	before := clock.Cycles()
	tlb.FlushAll()
	if clock.Cycles() == before {
		t.Fatal("flush must charge cycles")
	}
	if _, ok := tlb.Lookup(0x1000, AccessRead); ok {
		t.Fatal("entry survived flush")
	}
}

func TestTLBInvalidateSinglePage(t *testing.T) {
	tlb, _ := newTLB()
	tlb.Fill(0x1000, PTE{Present: true, Perms: PermRW, PFN: 1}, 0, true)
	tlb.Fill(0x2000, PTE{Present: true, Perms: PermRW, PFN: 2}, 0, true)
	tlb.Invalidate(0x1000)
	if _, ok := tlb.Lookup(0x1000, AccessRead); ok {
		t.Fatal("invalidated entry hit")
	}
	if _, ok := tlb.Lookup(0x2000, AccessRead); !ok {
		t.Fatal("unrelated entry lost")
	}
}

func TestTLBShootdownChargesIPI(t *testing.T) {
	tlb, clock := newTLB()
	costs := sim.DefaultCosts()
	tlb.Fill(0x1000, PTE{Present: true, Perms: PermRW, PFN: 1}, 0, true)
	before := clock.Cycles()
	tlb.Shootdown(0x1000)
	if got := clock.Cycles() - before; got < costs.TLBShootdown {
		t.Fatalf("shootdown charged %d", got)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	tlb := NewTLB(1, 2, clock, &costs) // one set, two ways
	fill := func(vpn uint64) {
		tlb.Fill(PageOf(vpn), PTE{Present: true, Perms: PermRW, PFN: PFN(vpn)}, 0, true)
	}
	fill(1)
	fill(2)
	tlb.Lookup(PageOf(1), AccessRead) // make 1 MRU
	fill(3)                           // must evict 2
	if _, ok := tlb.Lookup(PageOf(1), AccessRead); !ok {
		t.Fatal("MRU entry evicted")
	}
	if _, ok := tlb.Lookup(PageOf(2), AccessRead); ok {
		t.Fatal("LRU entry survived")
	}
}

func TestTLBGeometryValidation(t *testing.T) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	for _, bad := range [][2]int{{0, 2}, {3, 2}, {4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTLB(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			NewTLB(bad[0], bad[1], clock, &costs)
		}()
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Addr: 0x1234, Type: AccessWrite, NotPresent: true}
	if f.Error() == "" {
		t.Fatal("empty fault message")
	}
}

func TestAccessTypeString(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" || AccessExec.String() != "exec" {
		t.Fatal("AccessType names wrong")
	}
}
