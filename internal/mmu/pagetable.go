package mmu

import (
	"fmt"

	"autarky/internal/sim"
)

// PTE is a page-table entry. The OS (including a malicious one) manipulates
// PTEs freely; hardware reads them during walks and writes back
// accessed/dirty bits.
type PTE struct {
	Present  bool
	Perms    Perms
	PFN      PFN
	Accessed bool
	Dirty    bool
	// EPC marks the frame as an enclave-page-cache frame. Real hardware
	// derives this from the physical address range (PRM); the model tags it
	// explicitly so the SGX checks can be applied on the same path.
	EPC bool
}

// Fault is an x86-style page fault: the faulting address plus an error code.
// The SGX layer may mask Addr before the fault is delivered to the OS.
type Fault struct {
	Addr VAddr
	Type AccessType
	// NotPresent is true when the walk found no valid translation
	// (P bit clear in the error code).
	NotPresent bool
	// Protection is true for a permission violation on a present mapping.
	Protection bool
	// SGX is true when the fault was raised by an SGX-specific check
	// (EPCM mismatch, non-EPC frame mapped in ELRANGE, or Autarky's
	// A/D-bits rule). The error code's PF_SGX bit.
	SGX bool
}

// Error implements the error interface so a Fault can flow through error
// returns inside the simulator.
func (f *Fault) Error() string {
	return fmt.Sprintf("page fault: %s %s (notPresent=%v protection=%v sgx=%v)",
		f.Type, f.Addr, f.NotPresent, f.Protection, f.SGX)
}

// pt node fan-out: 9 bits per level, 4 levels, like x86-64.
const (
	ptLevels  = 4
	ptFanout  = 512
	ptIdxBits = 9
	ptIdxMask = ptFanout - 1
)

type ptNode struct {
	entries [ptFanout]*ptNode // intermediate levels
	leaves  [ptFanout]*PTE    // last level only
}

// PageTable is a 4-level radix page table. One PageTable backs one process
// address space; the enclave shares its host process's table (paper §2.1:
// "their address space is managed by the OS via the same page table").
//
// Methods that mutate entries are the OS's (or the attacker's) interface.
// Walk is the hardware's interface.
type PageTable struct {
	root  ptNode
	clock *sim.Clock
	costs *sim.Costs

	// mapped counts present leaf PTEs, for accounting and tests.
	mapped int
}

// NewPageTable returns an empty page table charging walk costs to clock.
func NewPageTable(clock *sim.Clock, costs *sim.Costs) *PageTable {
	return &PageTable{clock: clock, costs: costs}
}

func idxAt(vpn uint64, level int) int {
	// level 0 is the root; level 3 indexes leaves.
	shift := uint((ptLevels - 1 - level) * ptIdxBits)
	return int((vpn >> shift) & ptIdxMask)
}

// lookup returns the leaf PTE for vpn, or nil. When create is true the
// intermediate nodes and the leaf are allocated.
func (pt *PageTable) lookup(vpn uint64, create bool) *PTE {
	n := &pt.root
	for level := 0; level < ptLevels-1; level++ {
		i := idxAt(vpn, level)
		next := n.entries[i]
		if next == nil {
			if !create {
				return nil
			}
			next = &ptNode{}
			n.entries[i] = next
		}
		n = next
	}
	i := idxAt(vpn, ptLevels-1)
	leaf := n.leaves[i]
	if leaf == nil && create {
		leaf = &PTE{}
		n.leaves[i] = leaf
	}
	return leaf
}

// Map installs a present translation vpn→pfn with the given permissions.
// A/D bits of a fresh mapping are clear, as after a Linux page-in.
func (pt *PageTable) Map(va VAddr, pfn PFN, perms Perms, epc bool) {
	pte := pt.lookup(va.VPN(), true)
	if !pte.Present {
		pt.mapped++
	}
	*pte = PTE{Present: true, Perms: perms, PFN: pfn, EPC: epc}
}

// MapAD is Map but with explicit initial accessed/dirty state. Autarky's OS
// interface maps enclave pages with A and D pre-set so that the
// A/D-must-be-set rule admits them (paper §5.1.4).
func (pt *PageTable) MapAD(va VAddr, pfn PFN, perms Perms, epc, accessed, dirty bool) {
	pt.Map(va, pfn, perms, epc)
	pte := pt.lookup(va.VPN(), false)
	pte.Accessed = accessed
	pte.Dirty = dirty
}

// Unmap clears the present bit and returns the previous entry (zero PTE if
// there was none). The frame itself is not freed; that is the caller's job.
func (pt *PageTable) Unmap(va VAddr) PTE {
	pte := pt.lookup(va.VPN(), false)
	if pte == nil {
		return PTE{}
	}
	old := *pte
	if pte.Present {
		pt.mapped--
	}
	*pte = PTE{}
	return old
}

// Get returns a copy of the PTE for va and whether a leaf entry exists.
func (pt *PageTable) Get(va VAddr) (PTE, bool) {
	pte := pt.lookup(va.VPN(), false)
	if pte == nil {
		return PTE{}, false
	}
	return *pte, true
}

// SetPresent toggles the present bit of an existing entry. This is the
// primitive of the original controlled-channel attack (Xu et al.): clear,
// wait for the fault, restore.
func (pt *PageTable) SetPresent(va VAddr, present bool) bool {
	pte := pt.lookup(va.VPN(), false)
	if pte == nil {
		return false
	}
	if pte.Present != present {
		if present {
			pt.mapped++
		} else {
			pt.mapped--
		}
	}
	pte.Present = present
	return true
}

// SetPerms replaces the permission bits of an existing present entry
// (the permission-reduction attack variant, and EMODPR's page-table side).
func (pt *PageTable) SetPerms(va VAddr, perms Perms) bool {
	pte := pt.lookup(va.VPN(), false)
	if pte == nil || !pte.Present {
		return false
	}
	pte.Perms = perms
	return true
}

// ClearAccessed clears the A bit (the silent attack of Wang et al. /
// Van Bulck et al.). Reports whether an entry existed.
func (pt *PageTable) ClearAccessed(va VAddr) bool {
	pte := pt.lookup(va.VPN(), false)
	if pte == nil {
		return false
	}
	pte.Accessed = false
	return true
}

// ClearDirty clears the D bit.
func (pt *PageTable) ClearDirty(va VAddr) bool {
	pte := pt.lookup(va.VPN(), false)
	if pte == nil {
		return false
	}
	pte.Dirty = false
	return true
}

// SetAD sets the accessed and (optionally) dirty bits, as the hardware
// walker does on a successful translation.
func (pt *PageTable) SetAD(va VAddr, dirty bool) {
	pte := pt.lookup(va.VPN(), false)
	if pte == nil {
		return
	}
	pte.Accessed = true
	if dirty {
		pte.Dirty = true
	}
}

// Mapped reports the number of present leaf entries.
func (pt *PageTable) Mapped() int { return pt.mapped }

// WalkResult carries the outcome of a hardware page-table walk before any
// SGX-specific checks and before A/D writeback.
type WalkResult struct {
	PTE PTE // snapshot at walk time (pre-writeback A/D state)
}

// Walk performs the hardware walk for va with the given access type,
// charging walk cycles. It returns a fault for a non-present translation or
// insufficient permissions. It does NOT update A/D bits; the CPU layer
// decides that after SGX checks (paper §5.1.4 requires the checks to see the
// pre-update state).
func (pt *PageTable) Walk(va VAddr, t AccessType) (WalkResult, *Fault) {
	n := &pt.root
	vpn := va.VPN()
	for level := 0; level < ptLevels-1; level++ {
		// Walk latency is pipeline work: it inherits the ambient category.
		pt.clock.ChargeAmbient(pt.costs.PTWalkLevel)
		next := n.entries[idxAt(vpn, level)]
		if next == nil {
			return WalkResult{}, &Fault{Addr: va, Type: t, NotPresent: true}
		}
		n = next
	}
	pt.clock.ChargeAmbient(pt.costs.PTWalkLevel)
	leaf := n.leaves[idxAt(vpn, ptLevels-1)]
	if leaf == nil || !leaf.Present {
		return WalkResult{}, &Fault{Addr: va, Type: t, NotPresent: true}
	}
	if !leaf.Perms.Allows(t) {
		return WalkResult{}, &Fault{Addr: va, Type: t, Protection: true}
	}
	return WalkResult{PTE: *leaf}, nil
}
