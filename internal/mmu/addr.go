// Package mmu models the x86-64 memory-management unit that SGX is entangled
// with: a 4-level radix page table walked on TLB misses, a set-associative
// TLB that is flushed on enclave transitions, accessed/dirty bit maintenance,
// and TLB shootdowns.
//
// The package is deliberately ignorant of SGX. The SGX layer
// (internal/sgx) hooks the post-walk path to apply EPCM checks and Autarky's
// A/D-bits-must-be-set rule, exactly as the real hardware layers the two
// mechanisms (Intel SDM §37.3, paper §2.1).
package mmu

import "fmt"

// PageSize is the only page size the model supports (4 KiB, as in the
// paper's SGX EPC).
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// VAddr is a 64-bit virtual address.
type VAddr uint64

// PFN is a physical frame number. The physical address space is abstract:
// frames are handed out by allocators (EPC frames by the SGX model, regular
// frames by the host OS model) from disjoint ranges.
type PFN uint64

// NoPFN is the zero frame, never handed out by any allocator.
const NoPFN PFN = 0

// VPN returns the virtual page number of a.
func (a VAddr) VPN() uint64 { return uint64(a) >> PageShift }

// PageBase returns a rounded down to its page base.
func (a VAddr) PageBase() VAddr { return a &^ (PageSize - 1) }

// Offset returns the in-page offset of a.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// String formats the address in hex.
func (a VAddr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// PageOf returns the base address of the page with virtual page number vpn.
func PageOf(vpn uint64) VAddr { return VAddr(vpn << PageShift) }

// PagesIn returns the number of pages needed to back n bytes.
func PagesIn(n uint64) uint64 { return (n + PageSize - 1) / PageSize }

// AccessType distinguishes the three kinds of memory access the controlled
// channel can observe (data read, data write, instruction fetch).
type AccessType uint8

const (
	// AccessRead is a data load.
	AccessRead AccessType = iota
	// AccessWrite is a data store.
	AccessWrite
	// AccessExec is an instruction fetch.
	AccessExec
)

// String names the access type.
func (t AccessType) String() string {
	switch t {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExec:
		return "exec"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// Perms is a page permission set.
type Perms uint8

// Permission bits. PermUser is set on all enclave and application mappings;
// the model has no supervisor-mode victims.
const (
	PermRead Perms = 1 << iota
	PermWrite
	PermExec
	PermUser
)

// PermRW and PermRWX are the common combinations.
const (
	PermRW  = PermRead | PermWrite | PermUser
	PermRX  = PermRead | PermExec | PermUser
	PermRWX = PermRead | PermWrite | PermExec | PermUser
)

// Allows reports whether the permission set admits the given access type.
func (p Perms) Allows(t AccessType) bool {
	switch t {
	case AccessRead:
		return p&PermRead != 0
	case AccessWrite:
		return p&PermWrite != 0
	case AccessExec:
		return p&PermExec != 0
	default:
		return false
	}
}

// String renders the permission set as "rwxu"-style flags.
func (p Perms) String() string {
	b := []byte("----")
	if p&PermRead != 0 {
		b[0] = 'r'
	}
	if p&PermWrite != 0 {
		b[1] = 'w'
	}
	if p&PermExec != 0 {
		b[2] = 'x'
	}
	if p&PermUser != 0 {
		b[3] = 'u'
	}
	return string(b)
}
