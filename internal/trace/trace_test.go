package trace

import (
	"testing"

	"autarky/internal/mmu"
)

func mkLog(vpns ...uint64) *Log {
	l := &Log{}
	for _, v := range vpns {
		l.Add(Event{Addr: mmu.PageOf(v)})
	}
	return l
}

func TestLogBasics(t *testing.T) {
	l := mkLog(1, 2, 1)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	pages := l.Pages()
	if len(pages) != 3 || pages[0] != 1 || pages[1] != 2 || pages[2] != 1 {
		t.Fatalf("Pages = %v", pages)
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestDistinctPagesSorted(t *testing.T) {
	l := mkLog(5, 1, 5, 3)
	got := l.DistinctPages()
	want := []uint64{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("DistinctPages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DistinctPages = %v, want %v", got, want)
		}
	}
}

func TestSignatureDistinguishesOrder(t *testing.T) {
	if mkLog(1, 2).Signature() == mkLog(2, 1).Signature() {
		t.Fatal("signature ignores order")
	}
	if mkLog(1, 2).Signature() != mkLog(1, 2).Signature() {
		t.Fatal("signature not deterministic")
	}
	if mkLog().Signature() != "" {
		t.Fatal("empty log signature not empty")
	}
}

func TestSubsequenceOf(t *testing.T) {
	full := mkLog(1, 2, 3, 4, 5)
	if !mkLog(2, 4).SubsequenceOf(full) {
		t.Fatal("valid subsequence rejected")
	}
	if mkLog(4, 2).SubsequenceOf(full) {
		t.Fatal("out-of-order subsequence accepted")
	}
	if !mkLog().SubsequenceOf(full) {
		t.Fatal("empty subsequence rejected")
	}
	if mkLog(9).SubsequenceOf(full) {
		t.Fatal("absent page accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindFault, KindAccessedBit, KindDirtyBit, KindGroundTruth} {
		if k.String() == "" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
