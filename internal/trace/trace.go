// Package trace records the page-access information visible to different
// observers: the OS-level adversary's fault log (the controlled channel)
// and, for validation, the architectural ground truth. Experiments compare
// the two to quantify exactly what each paging policy leaks.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"autarky/internal/mmu"
)

// Event is one observation: a page and how it was seen.
type Event struct {
	Cycle uint64
	Addr  mmu.VAddr // page-aligned (or enclave base when masked)
	Type  mmu.AccessType
	// Kind labels how the observer learned of the access.
	Kind Kind
}

// Kind is the observation channel.
type Kind uint8

// Observation kinds.
const (
	// KindFault is a page fault delivered to the OS.
	KindFault Kind = iota
	// KindAccessedBit is an accessed-bit transition seen by scanning PTEs.
	KindAccessedBit
	// KindDirtyBit is a dirty-bit transition.
	KindDirtyBit
	// KindGroundTruth is the architectural access (not visible to the OS;
	// used only to score attack recovery).
	KindGroundTruth
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFault:
		return "fault"
	case KindAccessedBit:
		return "A-bit"
	case KindDirtyBit:
		return "D-bit"
	case KindGroundTruth:
		return "truth"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Log is an append-only sequence of events.
type Log struct {
	Events []Event
}

// Add appends an event.
func (l *Log) Add(e Event) { l.Events = append(l.Events, e) }

// Len reports the number of events.
func (l *Log) Len() int { return len(l.Events) }

// Reset clears the log.
func (l *Log) Reset() { l.Events = l.Events[:0] }

// Pages returns the ordered sequence of page numbers in the log.
func (l *Log) Pages() []uint64 {
	out := make([]uint64, len(l.Events))
	for i, e := range l.Events {
		out[i] = e.Addr.VPN()
	}
	return out
}

// DistinctPages returns the sorted set of distinct pages observed.
func (l *Log) DistinctPages() []uint64 {
	set := make(map[uint64]struct{})
	for _, e := range l.Events {
		set[e.Addr.VPN()] = struct{}{}
	}
	out := make([]uint64, 0, len(set))
	for vpn := range set {
		out = append(out, vpn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Signature renders the page sequence as a string, the form attack matchers
// use as a lookup key (Xu et al. match page-fault sequences against
// signatures precomputed from the public binary).
func (l *Log) Signature() string {
	var b strings.Builder
	for i, e := range l.Events {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%x", e.Addr.VPN())
	}
	return b.String()
}

// SubsequenceOf reports whether l's page sequence appears as a (not
// necessarily contiguous) subsequence of other's. Attackers use it to match
// noisy observations against full ground-truth signatures.
func (l *Log) SubsequenceOf(other *Log) bool {
	i := 0
	for _, e := range other.Events {
		if i == len(l.Events) {
			return true
		}
		if l.Events[i].Addr.VPN() == e.Addr.VPN() {
			i++
		}
	}
	return i == len(l.Events)
}
