// Package ycsb reimplements the YCSB key-distribution generators the paper
// uses for the Memcached evaluation (§7.3, Fig. 8): uniform, Zipfian
// (scrambled, α = 0.99) and hotspot (1% hot set with 90% / 99% access
// probability), plus the workload-C request mix (100% GET).
package ycsb

import (
	"fmt"
	"math"

	"autarky/internal/sim"
)

// Generator produces a stream of record indexes in [0, n).
type Generator interface {
	Next() int
	Name() string
}

// Uniform selects keys uniformly at random.
type Uniform struct {
	n   int
	rng *sim.Rand
}

// NewUniform returns a uniform generator over n records.
func NewUniform(n int, seed uint64) *Uniform {
	if n <= 0 {
		panic("ycsb: NewUniform(n<=0)")
	}
	return &Uniform{n: n, rng: sim.NewRand(seed)}
}

// Next implements Generator.
func (u *Uniform) Next() int { return u.rng.Intn(u.n) }

// Name implements Generator.
func (u *Uniform) Name() string { return "uniform" }

// Zipfian is the standard YCSB Zipfian generator (Gray et al.'s algorithm)
// with FNV scrambling so hot keys are spread over the keyspace.
type Zipfian struct {
	n         int
	theta     float64
	alpha     float64
	zetan     float64
	zeta2     float64
	eta       float64
	rng       *sim.Rand
	scrambled bool
}

// NewZipfian returns a scrambled Zipfian generator over n records with the
// given theta (the paper uses 0.99).
func NewZipfian(n int, theta float64, seed uint64) *Zipfian {
	if n <= 0 {
		panic("ycsb: NewZipfian(n<=0)")
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("ycsb: theta %v out of (0,1)", theta))
	}
	z := &Zipfian{n: n, theta: theta, rng: sim.NewRand(seed), scrambled: true}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// rank returns the next Zipf-distributed rank in [0, n) (0 = hottest).
func (z *Zipfian) rank() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// Next implements Generator.
func (z *Zipfian) Next() int {
	r := z.rank()
	if r >= z.n {
		r = z.n - 1
	}
	if !z.scrambled {
		return r
	}
	return int(fnv64(uint64(r)) % uint64(z.n))
}

// Name implements Generator.
func (z *Zipfian) Name() string { return fmt.Sprintf("zipf(%.2f)", z.theta) }

func fnv64(v uint64) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 0x100000001b3
		v >>= 8
	}
	return h
}

// Hotspot selects from a hot subset with probability hotOpn, else from the
// cold remainder — YCSB's hotspot distribution. The paper's Fig. 8 uses a
// 1% hot set with 90% and 99% access probability.
type Hotspot struct {
	n       int
	hotN    int
	hotOpn  float64
	rng     *sim.Rand
	nameStr string
}

// NewHotspot returns a hotspot generator over n records: hotFrac of them
// are hot and receive hotOpn of the accesses.
func NewHotspot(n int, hotFrac, hotOpn float64, seed uint64) *Hotspot {
	if n <= 0 {
		panic("ycsb: NewHotspot(n<=0)")
	}
	hotN := int(float64(n) * hotFrac)
	if hotN < 1 {
		hotN = 1
	}
	return &Hotspot{
		n:       n,
		hotN:    hotN,
		hotOpn:  hotOpn,
		rng:     sim.NewRand(seed),
		nameStr: fmt.Sprintf("hotspot(%.2f)", hotOpn),
	}
}

// Next implements Generator.
func (h *Hotspot) Next() int {
	if h.rng.Float64() < h.hotOpn {
		return h.rng.Intn(h.hotN)
	}
	if h.n == h.hotN {
		return h.rng.Intn(h.n)
	}
	return h.hotN + h.rng.Intn(h.n-h.hotN)
}

// Name implements Generator.
func (h *Hotspot) Name() string { return h.nameStr }

// Op is one request of a YCSB workload.
type Op struct {
	Key  int
	Read bool
}

// Workload generates a request mix over a key distribution. WorkloadC (the
// paper's configuration) is 100% reads.
type Workload struct {
	Gen       Generator
	ReadRatio float64 // 1.0 for workload C
	rng       *sim.Rand
}

// NewWorkloadC returns the 100%-GET workload over the given generator.
func NewWorkloadC(gen Generator) *Workload {
	return &Workload{Gen: gen, ReadRatio: 1.0, rng: sim.NewRand(7)}
}

// NewWorkload returns a read/write mix over the generator.
func NewWorkload(gen Generator, readRatio float64, seed uint64) *Workload {
	return &Workload{Gen: gen, ReadRatio: readRatio, rng: sim.NewRand(seed)}
}

// Next returns the next operation.
func (w *Workload) Next() Op {
	return Op{Key: w.Gen.Next(), Read: w.rng.Float64() < w.ReadRatio}
}
