package ycsb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformRangeAndCoverage(t *testing.T) {
	const n = 50
	g := NewUniform(n, 1)
	seen := make(map[int]int)
	for i := 0; i < 20000; i++ {
		k := g.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		seen[k]++
	}
	if len(seen) != n {
		t.Fatalf("only %d/%d keys seen", len(seen), n)
	}
	// Roughly uniform: no key should get more than 3x its fair share.
	for k, c := range seen {
		if c > 3*20000/n {
			t.Fatalf("key %d hit %d times", k, c)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	const n = 10000
	g := NewZipfian(n, 0.99, 1)
	counts := make(map[int]int)
	const samples = 50000
	for i := 0; i < samples; i++ {
		k := g.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		counts[k]++
	}
	// Skew: the most popular 1% of keys should draw far more than 1% of
	// accesses (for theta=.99 typically >30%).
	type kv struct{ k, c int }
	var top int
	hot := samples / 100
	// Count mass of the hottest keys by sorting counts descending.
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	// partial selection: simple sort
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j] > all[i] {
				all[i], all[j] = all[j], all[i]
			}
		}
		if i >= n/100 {
			break
		}
	}
	for i := 0; i < n/100 && i < len(all); i++ {
		top += all[i]
	}
	_ = hot
	if frac := float64(top) / samples; frac < 0.2 {
		t.Fatalf("top 1%% of keys drew only %.1f%% of accesses — not Zipfian", frac*100)
	}
}

func TestZipfianScrambles(t *testing.T) {
	// Scrambling spreads the hot keys: the single hottest key should not
	// be key 0.
	g := NewZipfian(1000, 0.99, 7)
	counts := make(map[int]int)
	for i := 0; i < 20000; i++ {
		counts[g.Next()]++
	}
	max, argmax := 0, -1
	for k, c := range counts {
		if c > max {
			max, argmax = c, k
		}
	}
	if argmax == 0 {
		t.Fatal("hottest key is rank 0 — scrambling not applied")
	}
}

func TestZipfianValidation(t *testing.T) {
	for _, bad := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("theta %v accepted", bad)
				}
			}()
			NewZipfian(10, bad, 1)
		}()
	}
}

func TestHotspotFractions(t *testing.T) {
	const n = 10000
	g := NewHotspot(n, 0.01, 0.9, 3)
	hotN := n / 100
	hot := 0
	const samples = 50000
	for i := 0; i < samples; i++ {
		k := g.Next()
		if k < 0 || k >= n {
			t.Fatalf("key %d out of range", k)
		}
		if k < hotN {
			hot++
		}
	}
	frac := float64(hot) / samples
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("hot fraction %.3f, want ~0.9", frac)
	}
}

func TestHotspotSkewOrdering(t *testing.T) {
	// hotspot(0.99) concentrates more than hotspot(0.90).
	measure := func(hotOpn float64) float64 {
		g := NewHotspot(10000, 0.01, hotOpn, 5)
		hot := 0
		for i := 0; i < 20000; i++ {
			if g.Next() < 100 {
				hot++
			}
		}
		return float64(hot) / 20000
	}
	if measure(0.99) <= measure(0.90) {
		t.Fatal("hotspot(0.99) not hotter than hotspot(0.90)")
	}
}

func TestGeneratorNames(t *testing.T) {
	if NewUniform(10, 1).Name() != "uniform" {
		t.Fatal("uniform name")
	}
	if NewZipfian(10, 0.99, 1).Name() != "zipf(0.99)" {
		t.Fatal("zipf name")
	}
	if NewHotspot(10, 0.01, 0.9, 1).Name() != "hotspot(0.90)" {
		t.Fatal("hotspot name")
	}
}

func TestWorkloadCIsAllReads(t *testing.T) {
	w := NewWorkloadC(NewUniform(100, 1))
	for i := 0; i < 1000; i++ {
		if op := w.Next(); !op.Read {
			t.Fatal("workload C produced a write")
		}
	}
}

func TestWorkloadMixRatio(t *testing.T) {
	w := NewWorkload(NewUniform(100, 1), 0.5, 2)
	reads := 0
	const samples = 20000
	for i := 0; i < samples; i++ {
		if w.Next().Read {
			reads++
		}
	}
	if frac := float64(reads) / samples; math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("read fraction %.3f, want ~0.5", frac)
	}
}

func TestGeneratorsInRangeProperty(t *testing.T) {
	check := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 2
		gens := []Generator{
			NewUniform(n, seed),
			NewZipfian(n, 0.99, seed),
			NewHotspot(n, 0.01, 0.9, seed),
		}
		for _, g := range gens {
			for i := 0; i < 200; i++ {
				if k := g.Next(); k < 0 || k >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := NewZipfian(100, 0.99, 9)
	b := NewZipfian(100, 0.99, 9)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}
