package pagestore

import (
	"bytes"
	"testing"

	"autarky/internal/mmu"
	"autarky/internal/sim"
)

// These tests and benchmarks pin the allocation discipline of the sealing
// hot path (see DESIGN.md, "Hot paths & allocation discipline"): with a
// dst of sufficient capacity, SealAppend and OpenAppend perform zero heap
// allocations per page. The gates run under plain `go test`, so a
// regression fails CI, not just a benchmark eyeball.

func TestSealOpenAppendZeroAlloc(t *testing.T) {
	s, err := NewSealer(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	va := mmu.VAddr(0x7000)
	plain := page(0xC4)
	sealBuf := make([]byte, 0, s.SealedLen())
	openBuf := make([]byte, 0, mmu.PageSize)
	blob, err := s.Seal(va, 3, plain)
	if err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		ct, err := s.SealAppend(sealBuf[:0], va, 3, plain)
		if err != nil {
			t.Fatal(err)
		}
		sealBuf = ct[:0]
	}); allocs != 0 {
		t.Errorf("SealAppend with capacity allocates %.1f/op, want 0", allocs)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		p, err := s.OpenAppend(openBuf[:0], va, 3, blob)
		if err != nil {
			t.Fatal(err)
		}
		openBuf = p[:0]
	}); allocs != 0 {
		t.Errorf("OpenAppend with capacity allocates %.1f/op, want 0", allocs)
	}
}

// TestOpenAppendOutputDoesNotAliasScratch verifies that the plaintext
// OpenAppend returns lives only in the caller's dst: a later call on the
// same Sealer (whose nonce/AAD scratch is reused) must not mutate an
// earlier result held in a different buffer. Same property for SealAppend
// ciphertexts.
func TestOpenAppendOutputDoesNotAliasScratch(t *testing.T) {
	s, err := NewSealer(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	va1, va2 := mmu.VAddr(0x1000), mmu.VAddr(0x2000)
	b1, err := s.Seal(va1, 1, page(0x11))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Seal(va2, 1, page(0x22))
	if err != nil {
		t.Fatal(err)
	}

	p1, err := s.OpenAppend(nil, va1, 1, b1)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), p1...)
	if _, err := s.OpenAppend(nil, va2, 1, b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, snapshot) {
		t.Error("second OpenAppend mutated the first call's plaintext")
	}

	c1, err := s.SealAppend(nil, va1, 2, page(0x33))
	if err != nil {
		t.Fatal(err)
	}
	ctSnapshot := append([]byte(nil), c1...)
	if _, err := s.SealAppend(nil, va2, 2, page(0x44)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, ctSnapshot) {
		t.Error("second SealAppend mutated the first call's ciphertext")
	}
}

// TestFetchBatchNoCrossEnclaveLeak drives two enclaves' pages through a
// caching backend whose ciphertext buffers are recycled, and checks each
// enclave only ever gets back plaintext it sealed itself. A buffer-reuse
// bug that let one enclave's bytes bleed into another's fetch would fail
// authentication here (or worse, decode to the wrong fill byte).
func TestFetchBatchNoCrossEnclaveLeak(t *testing.T) {
	clock := sim.NewClock()
	costs := sim.DefaultCosts()
	cache := NewCachedBackend(NewStore(), 2, clock, costs)

	sa, err := NewSealer(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSealer(secret, 2)
	if err != nil {
		t.Fatal(err)
	}
	vas := []mmu.VAddr{0x1000, 0x2000, 0x3000}
	evict := func(s *Sealer, enclaveID uint64, fill byte) {
		t.Helper()
		batch := make([]PageBlob, len(vas))
		for i, va := range vas {
			b, err := s.Seal(va, 1, page(fill))
			if err != nil {
				t.Fatal(err)
			}
			batch[i] = PageBlob{VA: va, Blob: b}
		}
		if err := cache.EvictBatch(enclaveID, batch); err != nil {
			t.Fatal(err)
		}
	}
	check := func(s *Sealer, enclaveID uint64, fill byte) {
		t.Helper()
		out := make([]Blob, len(vas))
		if err := cache.FetchBatch(enclaveID, vas, out); err != nil {
			t.Fatal(err)
		}
		for i, va := range vas {
			plain, err := s.OpenAppend(nil, va, 1, out[i])
			if err != nil {
				t.Fatalf("enclave %d page %s: %v", enclaveID, va, err)
			}
			if !bytes.Equal(plain, page(fill)) {
				t.Fatalf("enclave %d page %s decoded to foreign content", enclaveID, va)
			}
		}
	}

	// Interleave so the cache (capacity 2 < 3 pages per enclave) keeps
	// writing back, dropping and recycling buffers between the enclaves.
	evict(sa, 1, 0xAA)
	evict(sb, 2, 0xBB)
	check(sa, 1, 0xAA)
	check(sb, 2, 0xBB)
	check(sa, 1, 0xAA)
}

func BenchmarkSealAppend(b *testing.B) {
	s, err := NewSealer(secret, 1)
	if err != nil {
		b.Fatal(err)
	}
	plain := page(0xAB)
	buf := make([]byte, 0, s.SealedLen())
	b.ReportAllocs()
	b.SetBytes(mmu.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := s.SealAppend(buf[:0], 0x1000, 7, plain)
		if err != nil {
			b.Fatal(err)
		}
		buf = ct[:0]
	}
}

func BenchmarkOpenAppend(b *testing.B) {
	s, err := NewSealer(secret, 1)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := s.Seal(0x1000, 7, page(0xAB))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, mmu.PageSize)
	b.ReportAllocs()
	b.SetBytes(mmu.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := s.OpenAppend(buf[:0], 0x1000, 7, blob)
		if err != nil {
			b.Fatal(err)
		}
		buf = p[:0]
	}
}
