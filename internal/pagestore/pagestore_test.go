package pagestore

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"autarky/internal/mmu"
)

var secret = []byte("test-root-secret")

func page(b byte) []byte {
	p := make([]byte, mmu.PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestSealOpenRoundTrip(t *testing.T) {
	s, err := NewSealer(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	plain := page(0xab)
	blob, err := s.Seal(0x1000, 1, plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Open(0x1000, 1, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Fatal("roundtrip corrupted data")
	}
}

func TestSealRejectsWrongSize(t *testing.T) {
	s, _ := NewSealer(secret, 1)
	if _, err := s.Seal(0x1000, 1, []byte("short")); err == nil {
		t.Fatal("sealed a non-page buffer")
	}
}

func TestOpenRejectsWrongVersion(t *testing.T) {
	s, _ := NewSealer(secret, 1)
	blob, _ := s.Seal(0x1000, 3, page(1))
	if _, err := s.Open(0x1000, 4, blob); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("stale version accepted: %v", err)
	}
}

func TestOpenRejectsWrongAddress(t *testing.T) {
	s, _ := NewSealer(secret, 1)
	blob, _ := s.Seal(0x1000, 1, page(1))
	if _, err := s.Open(0x2000, 1, blob); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("relocated blob accepted: %v", err)
	}
}

func TestOpenRejectsCrossEnclaveBlob(t *testing.T) {
	s1, _ := NewSealer(secret, 1)
	s2, _ := NewSealer(secret, 2)
	blob, _ := s1.Seal(0x1000, 1, page(1))
	if _, err := s2.Open(0x1000, 1, blob); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("cross-enclave blob accepted: %v", err)
	}
}

func TestOpenRejectsTamperedCiphertext(t *testing.T) {
	s, _ := NewSealer(secret, 1)
	blob, _ := s.Seal(0x1000, 1, page(1))
	blob.Ciphertext[10] ^= 1
	if _, err := s.Open(0x1000, 1, blob); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered blob accepted: %v", err)
	}
}

func TestSealerKeysDifferPerEnclave(t *testing.T) {
	s1, _ := NewSealer(secret, 1)
	s2, _ := NewSealer(secret, 2)
	p := page(7)
	b1, _ := s1.Seal(0x1000, 1, p)
	b2, _ := s2.Seal(0x1000, 1, p)
	if bytes.Equal(b1.Ciphertext, b2.Ciphertext) {
		t.Fatal("two enclaves produced identical ciphertexts")
	}
}

func TestStorePutGetDelete(t *testing.T) {
	st := NewStore()
	b := Blob{Ciphertext: []byte{1, 2, 3}, Version: 1}
	st.Put(1, 0x1000, b)
	got, err := st.Get(1, 0x1000)
	if err != nil || got.Version != 1 {
		t.Fatalf("get: %v %v", got, err)
	}
	if _, err := st.Get(1, 0x2000); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob: %v", err)
	}
	if _, err := st.Get(2, 0x1000); !errors.Is(err, ErrNotFound) {
		t.Fatal("blob visible across enclaves")
	}
	st.Delete(1, 0x1000)
	if _, err := st.Get(1, 0x1000); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete failed")
	}
}

func TestStoreLen(t *testing.T) {
	st := NewStore()
	st.Put(1, 0x1000, Blob{})
	st.Put(1, 0x2000, Blob{})
	st.Put(1, 0x1000, Blob{}) // overwrite
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestStoreReplayAttackDetected(t *testing.T) {
	s, _ := NewSealer(secret, 1)
	st := NewStore()
	v1, _ := s.Seal(0x1000, 1, page(1))
	v2, _ := s.Seal(0x1000, 2, page(2))
	st.Put(1, 0x1000, v1)
	st.Put(1, 0x1000, v2)
	if !st.Replay(1, 0x1000) {
		t.Fatal("replay found no history")
	}
	blob, _ := st.Get(1, 0x1000)
	// The trusted side expects version 2; the replayed v1 must fail.
	if _, err := s.Open(0x1000, 2, blob); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("replayed blob accepted: %v", err)
	}
}

func TestStoreReplayWithoutHistory(t *testing.T) {
	st := NewStore()
	st.Put(1, 0x1000, Blob{Ciphertext: []byte{1}})
	if st.Replay(1, 0x1000) {
		t.Fatal("replay succeeded with no archived blob")
	}
}

func TestStoreCorrupt(t *testing.T) {
	s, _ := NewSealer(secret, 1)
	st := NewStore()
	blob, _ := s.Seal(0x1000, 1, page(3))
	st.Put(1, 0x1000, blob)
	if !st.Corrupt(1, 0x1000) {
		t.Fatal("corrupt failed")
	}
	got, _ := st.Get(1, 0x1000)
	if _, err := s.Open(0x1000, 1, got); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("corrupted blob accepted: %v", err)
	}
	if st.Corrupt(1, 0x9000) {
		t.Fatal("corrupted a missing blob")
	}
}

// TestOpenDistinguishesFailureModes locks the refined unseal taxonomy: each
// attack class yields its own sentinel, every sentinel wraps ErrIntegrity
// (so security decisions never depend on the refinement), and the
// refinements never match each other.
func TestOpenDistinguishesFailureModes(t *testing.T) {
	s, _ := NewSealer(secret, 1)
	other, _ := NewSealer(secret, 2)
	good, _ := s.Seal(0x1000, 2, page(0xaa))

	truncated := good
	truncated.Ciphertext = good.Ciphertext[:8]

	flipped := good
	flipped.Ciphertext = append([]byte(nil), good.Ciphertext...)
	flipped.Ciphertext[0] ^= 0xff

	stale, _ := s.Seal(0x1000, 1, page(0xaa)) // opened expecting version 2

	foreign, _ := other.Seal(0x1000, 2, page(0xaa))

	cases := []struct {
		name string
		blob Blob
		want error
	}{
		{"truncated", truncated, ErrTruncated},
		{"bit-flipped", flipped, ErrIntegrity},
		{"replayed stale version", stale, ErrStaleVersion},
		{"wrong enclave", foreign, ErrWrongEnclave},
	}
	refinements := []error{ErrTruncated, ErrStaleVersion, ErrWrongEnclave}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Open(0x1000, 2, tc.blob)
			if err == nil {
				t.Fatal("attacked blob unsealed")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("error %v does not wrap ErrIntegrity", err)
			}
			// No refinement may claim an attack it did not diagnose.
			for _, ref := range refinements {
				if ref != tc.want && errors.Is(err, ref) {
					t.Fatalf("error %v also matches unrelated %v", err, ref)
				}
			}
		})
	}
}

func TestSealOpenProperty(t *testing.T) {
	s, _ := NewSealer(secret, 9)
	if err := quick.Check(func(vpn uint16, version uint64, fill byte) bool {
		va := mmu.PageOf(uint64(vpn))
		blob, err := s.Seal(va, version, page(fill))
		if err != nil {
			return false
		}
		got, err := s.Open(va, version, blob)
		return err == nil && bytes.Equal(got, page(fill))
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
