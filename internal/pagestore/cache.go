package pagestore

import (
	"container/list"
	"fmt"

	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/sim"
)

// CachedBackend is a bounded write-back cache of sealed blobs layered over
// any inner PagingBackend. It absorbs the common controlled-channel-defense
// pattern where a page evicted under EPC pressure is faulted right back in:
// the re-fetch is served from the cache without paying the inner backend's
// cost (for an ORAM inner backend, without a tree access at all).
//
// The cache is write-back: an evicted blob lands in the cache and reaches
// the inner backend only when LRU pressure pushes it out. Replacement is a
// strict LRU over (enclave, page) keys, maintained with an intrusive list —
// no map iteration, so identical call sequences produce identical
// write-back order and identical cycle charges.
//
// The cache lives in untrusted memory and holds only sealed blobs; it needs
// no trust because the sealing layer authenticates whatever comes back.
//
// Per the PagingBackend ownership contract the cache copies every blob it
// retains. Ciphertext buffers are recycled through a free list as entries
// are written back, so a cache in steady state allocates nothing per
// eviction.
type CachedBackend struct {
	inner    PagingBackend
	capacity int
	clock    *sim.Clock
	costs    sim.Costs
	meter    *metrics.Metrics

	entries map[storeKey]*list.Element
	lru     *list.List // front = most recent; back = next write-back victim

	// freeBufs recycles ciphertext buffers of written-back entries into new
	// inserts. Scratch below is reused across batch calls; contents are only
	// valid within one call.
	freeBufs [][]byte
	overflow []cacheEntry
	runBuf   []PageBlob
	missVAs  []mmu.VAddr
	missIdx  []int
	missBufs []Blob
}

type cacheEntry struct {
	key  storeKey
	blob Blob
}

var _ PagingBackend = (*CachedBackend)(nil)

// NewCachedBackend builds a cache of at most capacity sealed blobs in front
// of inner. Capacity must be positive; the facade validates user-supplied
// sizes before they reach here.
func NewCachedBackend(inner PagingBackend, capacity int, clock *sim.Clock, costs sim.Costs) *CachedBackend {
	if capacity < 1 {
		panic(fmt.Sprintf("pagestore: cache capacity %d, want >= 1", capacity))
	}
	return &CachedBackend{
		inner:    inner,
		capacity: capacity,
		clock:    clock,
		costs:    costs,
		meter:    metrics.Of(clock),
		entries:  make(map[storeKey]*list.Element),
		lru:      list.New(),
	}
}

// Name implements PagingBackend.
func (c *CachedBackend) Name() string {
	return fmt.Sprintf("cache(%d)+%s", c.capacity, c.inner.Name())
}

// Evict implements PagingBackend: the blob lands in the cache; LRU overflow
// is written back to the inner backend.
func (c *CachedBackend) Evict(enclaveID uint64, va mmu.VAddr, b Blob) error {
	c.clock.ChargeAs(sim.CatPaging, c.costs.BlobCacheLookup)
	c.meter.Inc(metrics.CntBackendStores)
	c.meter.Add(metrics.CntBackendBytes, uint64(len(b.Ciphertext)))
	c.insert(key(enclaveID, va), b)
	return c.writeBackOverflow()
}

// Fetch implements PagingBackend. A hit is served from the cache (the entry
// stays resident — it still holds the current sealed contents); a miss goes
// to the inner backend and pays the blob copy between levels. Misses do not
// populate the cache: only eviction traffic does, which is what makes the
// hit rate measure re-fetch absorption rather than read locality.
func (c *CachedBackend) Fetch(enclaveID uint64, va mmu.VAddr) (Blob, error) {
	c.clock.ChargeAs(sim.CatPaging, c.costs.BlobCacheLookup)
	c.meter.Inc(metrics.CntBackendLoads)
	k := key(enclaveID, va)
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		b := el.Value.(*cacheEntry).blob
		c.meter.Inc(metrics.CntBackendHits)
		c.meter.Add(metrics.CntBackendBytes, uint64(len(b.Ciphertext)))
		return b, nil
	}
	b, err := c.inner.Fetch(enclaveID, va)
	if err != nil {
		return Blob{}, err
	}
	c.clock.ChargeAs(sim.CatPaging, c.costs.BlobCopy)
	c.meter.Inc(metrics.CntBackendMisses)
	c.meter.Add(metrics.CntBackendBytes, uint64(len(b.Ciphertext)))
	return b, nil
}

// Drop implements PagingBackend. The blob may live in the cache, in the
// inner backend, or both (a cached entry whose earlier incarnation was
// written back), so both levels are dropped.
func (c *CachedBackend) Drop(enclaveID uint64, va mmu.VAddr) error {
	c.clock.ChargeAs(sim.CatPaging, c.costs.BlobCacheLookup)
	k := key(enclaveID, va)
	if el, ok := c.entries[k]; ok {
		c.lru.Remove(el)
		delete(c.entries, k)
		c.freeBufs = append(c.freeBufs, el.Value.(*cacheEntry).blob.Ciphertext[:0])
	}
	return c.inner.Drop(enclaveID, va)
}

// EvictBatch implements PagingBackend as one pipelined pass: all victims
// enter the cache first, then the accumulated overflow is written back to
// the inner backend in LRU (oldest-first) order, batching consecutive
// same-enclave runs. (Overflow can belong to a different enclave than the
// batch being evicted when co-resident enclaves share the backend.)
func (c *CachedBackend) EvictBatch(enclaveID uint64, pages []PageBlob) error {
	overflow := c.overflow[:0]
	for _, pb := range pages {
		c.clock.ChargeAs(sim.CatPaging, c.costs.BlobCacheLookup)
		c.meter.Inc(metrics.CntBackendStores)
		c.meter.Add(metrics.CntBackendBytes, uint64(len(pb.Blob.Ciphertext)))
		c.insert(key(enclaveID, pb.VA), pb.Blob)
		for c.lru.Len() > c.capacity {
			overflow = append(overflow, c.popVictim())
		}
	}
	c.overflow = overflow
	if len(overflow) == 0 {
		return nil
	}
	c.clock.ChargeAs(sim.CatPaging, uint64(len(overflow))*c.costs.BlobCopy)
	for start := 0; start < len(overflow); {
		end := start + 1
		for end < len(overflow) && overflow[end].key.enclaveID == overflow[start].key.enclaveID {
			end++
		}
		run := c.runBuf[:0]
		for _, ent := range overflow[start:end] {
			run = append(run, PageBlob{VA: mmu.PageOf(ent.key.vpn), Blob: ent.blob})
		}
		c.runBuf = run
		if err := c.inner.EvictBatch(overflow[start].key.enclaveID, run); err != nil {
			return err
		}
		start = end
	}
	// The inner backend copied everything it kept; the popped entries'
	// buffers are free to back future inserts.
	for i := range overflow {
		c.freeBufs = append(c.freeBufs, overflow[i].blob.Ciphertext[:0])
	}
	return nil
}

// FetchBatch implements PagingBackend: hits come straight from the cache
// and only the misses travel to the inner backend, as one batch.
func (c *CachedBackend) FetchBatch(enclaveID uint64, pages []mmu.VAddr, out []Blob) error {
	missVAs := c.missVAs[:0]
	missIdx := c.missIdx[:0]
	for i, va := range pages {
		c.clock.ChargeAs(sim.CatPaging, c.costs.BlobCacheLookup)
		c.meter.Inc(metrics.CntBackendLoads)
		if el, ok := c.entries[key(enclaveID, va)]; ok {
			c.lru.MoveToFront(el)
			out[i] = el.Value.(*cacheEntry).blob
			c.meter.Inc(metrics.CntBackendHits)
			c.meter.Add(metrics.CntBackendBytes, uint64(len(out[i].Ciphertext)))
			continue
		}
		missVAs = append(missVAs, va)
		missIdx = append(missIdx, i)
	}
	c.missVAs, c.missIdx = missVAs, missIdx
	if len(missVAs) == 0 {
		return nil
	}
	if cap(c.missBufs) < len(missVAs) {
		c.missBufs = make([]Blob, len(missVAs))
	}
	fetched := c.missBufs[:len(missVAs)]
	if err := c.inner.FetchBatch(enclaveID, missVAs, fetched); err != nil {
		return err
	}
	c.clock.ChargeAs(sim.CatPaging, uint64(len(fetched))*c.costs.BlobCopy)
	for j, b := range fetched {
		out[missIdx[j]] = b
		c.meter.Inc(metrics.CntBackendMisses)
		c.meter.Add(metrics.CntBackendBytes, uint64(len(b.Ciphertext)))
	}
	return nil
}

// Len reports how many blobs the cache currently holds (tests only).
func (c *CachedBackend) Len() int { return c.lru.Len() }

// insert places (or refreshes) a blob at the MRU position, copying the
// ciphertext into cache-owned storage (reusing the entry's existing buffer
// on overwrite, a recycled one otherwise). The caller is responsible for
// flushing any resulting overflow.
func (c *CachedBackend) insert(k storeKey, b Blob) {
	if el, ok := c.entries[k]; ok {
		ent := el.Value.(*cacheEntry)
		ent.blob.Ciphertext = append(ent.blob.Ciphertext[:0], b.Ciphertext...)
		ent.blob.Version = b.Version
		ent.blob.EnclaveID = b.EnclaveID
		c.lru.MoveToFront(el)
		return
	}
	var buf []byte
	if n := len(c.freeBufs); n > 0 {
		buf = c.freeBufs[n-1]
		c.freeBufs = c.freeBufs[:n-1]
	}
	b.Ciphertext = append(buf, b.Ciphertext...)
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, blob: b})
}

// popVictim removes and returns the LRU entry for write-back.
func (c *CachedBackend) popVictim() cacheEntry {
	el := c.lru.Back()
	ent := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, ent.key)
	return *ent
}

// writeBackOverflow flushes LRU overflow one blob at a time (the single-
// eviction path; batch eviction flushes overflow in one inner batch).
func (c *CachedBackend) writeBackOverflow() error {
	for c.lru.Len() > c.capacity {
		ent := c.popVictim()
		c.clock.ChargeAs(sim.CatPaging, c.costs.BlobCopy)
		if err := c.inner.Evict(ent.key.enclaveID, mmu.PageOf(ent.key.vpn), ent.blob); err != nil {
			return err
		}
		c.freeBufs = append(c.freeBufs, ent.blob.Ciphertext[:0])
	}
	return nil
}
