package pagestore

import "autarky/internal/mmu"

// PagingBackend is the storage layer beneath every paging path: the
// repository that holds sealed page blobs while their pages are out of EPC.
// Both paging mechanisms end here — the hardware path when EWB hands a
// sealed page to the OS (and ELDU asks for it back), and the SGXv2 software
// path when the runtime moves self-sealed blobs through the driver — so a
// single implementation of this interface serves every eviction/fetch path
// in the system.
//
// Backends compose: the plain *Store is the terminal backend, and wrapping
// backends (the write-back CachedBackend here, the oblivious oram.Backend)
// layer policies on top of any inner backend. Contract for implementations:
//
//   - Determinism: identical call sequences must produce identical state,
//     identical results and identical cycle charges. No map-iteration
//     ordering, no wall-clock, no global state.
//   - Cycle accounting: every cycle a backend charges must go through
//     Clock.ChargeAs / ChargeAmbient / a SetCategory scope so attribution
//     stays exact (tools/metriclint rejects naked Clock.Advance inside
//     Evict/Fetch paths). A backend that models free in-RAM storage (the
//     plain Store) charges nothing.
//   - Blobs are opaque: a backend never inspects or re-keys ciphertext; the
//     sealing layer alone guarantees confidentiality, integrity and
//     freshness. A backend that loses or reorders blobs is indistinguishable
//     from an attacker and is caught by the unseal checks upstream.
//   - Buffer ownership: the ciphertext of a blob passed to Evict/EvictBatch
//     belongs to the caller and is valid only for the duration of the call —
//     callers seal into reused arenas, so a backend that retains a blob
//     beyond the call (a store slot, a cache entry, an attack archive) must
//     copy it. Symmetrically, the ciphertext of a blob returned by
//     Fetch/FetchBatch belongs to the backend and is valid only until the
//     next operation on the backend stack; callers must unseal (or copy)
//     before issuing another backend call. This is what lets the hot paging
//     paths move sealed pages without allocating per blob.
//
// Evict stores the sealed blob for (enclave, page); Fetch returns the most
// recent blob stored for it (ErrNotFound if none); Drop discards the blob
// after a successful page-in. The batch variants exist so pipelined eviction
// passes can hand a whole victim set to the storage hierarchy at once;
// wrapping backends may use them to amortize their own bookkeeping, but the
// per-blob movement costs they model must not silently disappear.
type PagingBackend interface {
	// Name identifies the backend stack in experiment output ("store",
	// "cache(64)+store", "oram(4096)+store", ...).
	Name() string
	// Evict stores the sealed blob for the page.
	Evict(enclaveID uint64, va mmu.VAddr, b Blob) error
	// Fetch returns the current sealed blob for the page.
	Fetch(enclaveID uint64, va mmu.VAddr) (Blob, error)
	// Drop discards the blob for the page (after a successful restore).
	Drop(enclaveID uint64, va mmu.VAddr) error
	// EvictBatch stores a whole victim set in one pipelined pass.
	EvictBatch(enclaveID uint64, pages []PageBlob) error
	// FetchBatch fills out[i] with the blob for pages[i]. out must be at
	// least len(pages) long; the caller provides (and reuses) it so batch
	// fetches move no slice headers through the heap. On error the contents
	// of out are unspecified.
	FetchBatch(enclaveID uint64, pages []mmu.VAddr, out []Blob) error
}

// PageBlob pairs one page address with its sealed contents for batch
// eviction.
type PageBlob struct {
	VA   mmu.VAddr
	Blob Blob
}

// --- plain Store as the terminal backend ----------------------------------

var _ PagingBackend = (*Store)(nil)

// Name implements PagingBackend.
func (st *Store) Name() string { return "store" }

// Evict implements PagingBackend over Put. The plain store models ordinary
// untrusted RAM: the copy cost is already part of the EWB/driver-call costs
// charged by the callers, so it charges nothing itself.
func (st *Store) Evict(enclaveID uint64, va mmu.VAddr, b Blob) error {
	st.Put(enclaveID, va, b)
	return nil
}

// Fetch implements PagingBackend over Get.
func (st *Store) Fetch(enclaveID uint64, va mmu.VAddr) (Blob, error) {
	return st.Get(enclaveID, va)
}

// Drop implements PagingBackend over Delete.
func (st *Store) Drop(enclaveID uint64, va mmu.VAddr) error {
	st.Delete(enclaveID, va)
	return nil
}

// EvictBatch implements PagingBackend.
func (st *Store) EvictBatch(enclaveID uint64, pages []PageBlob) error {
	for _, pb := range pages {
		st.Put(enclaveID, pb.VA, pb.Blob)
	}
	return nil
}

// FetchBatch implements PagingBackend. A missing blob is reported with its
// key attached (BlobError), so the caller knows which page of the batch
// failed.
func (st *Store) FetchBatch(enclaveID uint64, pages []mmu.VAddr, out []Blob) error {
	for i, va := range pages {
		b, err := st.Get(enclaveID, va)
		if err != nil {
			return wrapBlobErr(err, "fetch", enclaveID, va)
		}
		out[i] = b
	}
	return nil
}
