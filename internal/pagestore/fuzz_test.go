package pagestore

import (
	"bytes"
	"errors"
	"testing"

	"autarky/internal/mmu"
)

// FuzzUnseal drives Sealer.Open with attacker-shaped blobs. The security
// property under fuzz: Open never panics, never returns a non-integrity
// error, and only succeeds on the genuine (ciphertext, version, enclave)
// triple — in which case the plaintext must round-trip exactly. Run
// continuously via `make fuzz` (and for 10s in `make check`).
func FuzzUnseal(f *testing.F) {
	const (
		enclaveID = 42
		version   = 7
	)
	va := mmu.VAddr(0x5000)
	sealer, err := NewSealer([]byte("fuzz-root-secret"), enclaveID)
	if err != nil {
		f.Fatal(err)
	}
	plain := page(0x5A)
	good, err := sealer.Seal(va, version, plain)
	if err != nil {
		f.Fatal(err)
	}

	// Seed corpus: the genuine blob plus one representative of each
	// documented failure refinement.
	f.Add(good.Ciphertext, uint64(version), uint64(enclaveID))     // authentic
	f.Add(good.Ciphertext[:8], uint64(version), uint64(enclaveID)) // truncated
	f.Add([]byte{}, uint64(version), uint64(enclaveID))            // empty
	f.Add(good.Ciphertext, uint64(version-1), uint64(enclaveID))   // stale advisory version
	f.Add(good.Ciphertext, uint64(version), uint64(enclaveID+1))   // foreign advisory enclave
	corrupt := append([]byte(nil), good.Ciphertext...)
	corrupt[0] ^= 0xFF
	f.Add(corrupt, uint64(version), uint64(enclaveID)) // flipped ciphertext byte

	// reuse persists across fuzz iterations so OpenAppend sees a dirty,
	// previously written dst on every call after the first — the buffer
	// reuse pattern of the paging hot path.
	var reuse []byte
	f.Fuzz(func(t *testing.T, ct []byte, advVersion, advEnclave uint64) {
		b := Blob{Ciphertext: ct, Version: advVersion, EnclaveID: advEnclave}
		out, err := sealer.Open(va, version, b)
		reused, reuseErr := sealer.OpenAppend(reuse[:0], va, version, b)
		if reused != nil {
			reuse = reused[:0]
		}
		if (err == nil) != (reuseErr == nil) {
			t.Fatalf("Open and dst-reusing OpenAppend disagree: %v vs %v", err, reuseErr)
		}
		if err == nil && !bytes.Equal(out, reused) {
			t.Fatal("dst-reusing OpenAppend produced different plaintext")
		}
		if err != nil {
			if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("Open returned a non-integrity error: %v", err)
			}
			return
		}
		// Success means the AEAD authenticated: only the genuine ciphertext
		// can do that, and the plaintext must be exactly what was sealed.
		if !bytes.Equal(ct, good.Ciphertext) {
			t.Fatalf("forged ciphertext authenticated (%d bytes)", len(ct))
		}
		if !bytes.Equal(out, plain) {
			t.Fatal("authentic blob opened to different plaintext")
		}
	})
}
