package pagestore

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"autarky/internal/mmu"
)

func TestBlobErrorCarriesKeyAndUnwraps(t *testing.T) {
	be := &BlobError{EnclaveID: 7, VA: mmu.VAddr(0x4000), Op: "fetch", Err: ErrNotFound}
	for _, want := range []string{"fetch", "enclave 7", "0x4000"} {
		if !strings.Contains(be.Error(), want) {
			t.Errorf("BlobError message %q missing %q", be.Error(), want)
		}
	}
	if !errors.Is(be, ErrNotFound) {
		t.Error("BlobError does not unwrap to its cause")
	}
	wrapped := fmt.Errorf("driver: paging in: %w", be)
	var got *BlobError
	if !errors.As(wrapped, &got) || got.VA != be.VA || got.EnclaveID != be.EnclaveID {
		t.Errorf("errors.As through wrapping lost the key: %+v", got)
	}
}

func TestWrapBlobErrKeepsInnerAttribution(t *testing.T) {
	if wrapBlobErr(nil, "fetch", 1, mmu.VAddr(0x1000)) != nil {
		t.Fatal("wrapBlobErr invented an error from nil")
	}
	inner := wrapBlobErr(ErrUnavailable, "evict", 3, mmu.VAddr(0x2000))
	outer := wrapBlobErr(fmt.Errorf("outer layer: %w", inner), "fetch", 9, mmu.VAddr(0x9000))
	var be *BlobError
	if !errors.As(outer, &be) {
		t.Fatal("attribution lost")
	}
	// The inner (first, closest-to-the-failure) key must win: outer layers
	// pass attribution through instead of re-keying it.
	if be.EnclaveID != 3 || be.VA != mmu.VAddr(0x2000) || be.Op != "evict" {
		t.Errorf("outer wrap replaced the inner key: %+v", be)
	}
}

func TestFetchBatchReportsFailingPage(t *testing.T) {
	s, err := NewSealer(secret, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore()
	present := []mmu.VAddr{0x1000, 0x2000}
	for _, va := range present {
		b, err := s.Seal(va, 1, page(0xAA))
		if err != nil {
			t.Fatal(err)
		}
		st.Put(1, va, b)
	}
	missing := mmu.VAddr(0x3000)

	if err := st.FetchBatch(1, present, make([]Blob, len(present))); err != nil {
		t.Fatalf("batch of present pages failed: %v", err)
	}
	err = st.FetchBatch(1, []mmu.VAddr{present[0], missing, present[1]}, make([]Blob, 3))
	if err == nil {
		t.Fatal("batch with a missing page succeeded")
	}
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound class, got %v", err)
	}
	var be *BlobError
	if !errors.As(err, &be) {
		t.Fatalf("batch error carries no blob key: %v", err)
	}
	if be.VA != missing || be.EnclaveID != 1 || be.Op != "fetch" {
		t.Errorf("batch error names the wrong blob: %+v", be)
	}
}
