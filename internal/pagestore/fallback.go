package pagestore

import (
	"errors"
	"fmt"

	"autarky/internal/metrics"
	"autarky/internal/mmu"
	"autarky/internal/sim"
)

// FallbackBackend degrades gracefully when the primary storage stack stops
// answering: every eviction is mirrored into a secondary stack first, and a
// fetch (or eviction) the primary refuses with ErrUnavailable is served by
// the mirror instead of surfacing upward. Integrity failures are *not*
// masked — the secondary only answers availability problems; a tampered
// blob still reaches the sealing checks and still terminates the enclave.
//
// The mirror costs one blob copy per eviction (CntBackendMirrors) — the
// price of the redundancy — and every operation the secondary absorbs is
// counted in CntBackendFallbacks. A fetch also falls back on ErrNotFound:
// when the primary was unavailable at eviction time, the only copy of the
// blob lives in the mirror.
type FallbackBackend struct {
	primary   PagingBackend
	secondary PagingBackend
	clock     *sim.Clock
	costs     sim.Costs
	meter     *metrics.Metrics
}

var _ PagingBackend = (*FallbackBackend)(nil)

// NewFallbackBackend layers the degraded-mode mirror over primary.
func NewFallbackBackend(primary, secondary PagingBackend, clock *sim.Clock, costs sim.Costs) *FallbackBackend {
	return &FallbackBackend{
		primary:   primary,
		secondary: secondary,
		clock:     clock,
		costs:     costs,
		meter:     metrics.Of(clock),
	}
}

// Name implements PagingBackend.
func (fb *FallbackBackend) Name() string {
	return fmt.Sprintf("fallback(%s|%s)", fb.primary.Name(), fb.secondary.Name())
}

// fallsBack reports whether err is the class of failure the mirror absorbs.
func fallsBack(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNotFound)
}

// Evict implements PagingBackend: mirror first (so the secondary always
// holds the freshest blob), then the primary; a primary outage degrades to
// mirror-only instead of failing the eviction.
func (fb *FallbackBackend) Evict(enclaveID uint64, va mmu.VAddr, b Blob) error {
	fb.clock.ChargeAs(sim.CatPaging, fb.costs.BlobCopy)
	fb.meter.Inc(metrics.CntBackendMirrors)
	if err := fb.secondary.Evict(enclaveID, va, b); err != nil {
		return err
	}
	if err := fb.primary.Evict(enclaveID, va, b); err != nil {
		if errors.Is(err, ErrUnavailable) {
			fb.meter.Inc(metrics.CntBackendFallbacks)
			return nil
		}
		return err
	}
	return nil
}

// Fetch implements PagingBackend: primary first, mirror on outage or on a
// blob the primary never received.
func (fb *FallbackBackend) Fetch(enclaveID uint64, va mmu.VAddr) (Blob, error) {
	b, err := fb.primary.Fetch(enclaveID, va)
	if err == nil {
		return b, nil
	}
	if !fallsBack(err) {
		return Blob{}, err
	}
	fb.meter.Inc(metrics.CntBackendFallbacks)
	fb.clock.ChargeAs(sim.CatPaging, fb.costs.BlobCopy)
	return fb.secondary.Fetch(enclaveID, va)
}

// Drop implements PagingBackend: both levels forget the blob; an outage or
// a miss on either side is not an error for a discard.
func (fb *FallbackBackend) Drop(enclaveID uint64, va mmu.VAddr) error {
	if err := fb.secondary.Drop(enclaveID, va); err != nil && !fallsBack(err) {
		return err
	}
	if err := fb.primary.Drop(enclaveID, va); err != nil && !fallsBack(err) {
		return err
	}
	return nil
}

// EvictBatch implements PagingBackend, mirroring the whole victim set
// before offering it to the primary.
func (fb *FallbackBackend) EvictBatch(enclaveID uint64, pages []PageBlob) error {
	fb.clock.ChargeAs(sim.CatPaging, uint64(len(pages))*fb.costs.BlobCopy)
	fb.meter.Add(metrics.CntBackendMirrors, uint64(len(pages)))
	if err := fb.secondary.EvictBatch(enclaveID, pages); err != nil {
		return err
	}
	if err := fb.primary.EvictBatch(enclaveID, pages); err != nil {
		if errors.Is(err, ErrUnavailable) {
			fb.meter.Inc(metrics.CntBackendFallbacks)
			return nil
		}
		return err
	}
	return nil
}

// FetchBatch implements PagingBackend: the primary serves the batch when it
// can; on an outage (or a missing blob) the pages are re-fetched one by one
// through the per-page fallback path, so a single unavailable blob does not
// fail the whole batch. Filling out across successive Fetch calls is safe:
// fetches never recycle or overwrite backend-held buffers (only evictions
// and drops do), so earlier entries stay intact while later pages resolve.
func (fb *FallbackBackend) FetchBatch(enclaveID uint64, pages []mmu.VAddr, out []Blob) error {
	err := fb.primary.FetchBatch(enclaveID, pages, out)
	if err == nil {
		return nil
	}
	if !fallsBack(err) {
		return err
	}
	for i, va := range pages {
		b, ferr := fb.Fetch(enclaveID, va)
		if ferr != nil {
			return wrapBlobErr(ferr, "fetch", enclaveID, va)
		}
		out[i] = b
	}
	return nil
}
