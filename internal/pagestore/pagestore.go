// Package pagestore implements the untrusted backing store for evicted
// enclave pages, together with the trusted sealing primitive that protects
// their confidentiality, integrity and freshness.
//
// It models two things from the paper:
//
//   - the EWB/ELDU hardware paging path, which "guarantees the integrity of
//     the swapped out contents, and protects against replay attacks"
//     (paper §2.1) using per-page version counters held in trusted VA pages;
//   - the SGXv2 software self-paging path, where "enclave software
//     implement[s] custom encryption" (paper §5.2.1) and stores page
//     contents "securely (encrypted and signed) in untrusted memory" (§6).
//
// Sealing uses AES-128-GCM with a per-enclave key. The nonce binds the
// page's virtual page number and its eviction version, and the additional
// data binds the enclave identity, so a blob can only be restored to the
// address it was evicted from, at the version the trusted side expects.
package pagestore

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"autarky/internal/mmu"
)

// Errors returned by Open.
var (
	// ErrIntegrity indicates the blob failed authentication: it was
	// tampered with, replayed (stale version), or bound to a different page.
	// Every refined unseal error below wraps it, so errors.Is(err,
	// ErrIntegrity) still matches the whole class.
	ErrIntegrity = errors.New("pagestore: page blob failed integrity/freshness check")
	// ErrNotFound indicates no blob is stored for the page.
	ErrNotFound = errors.New("pagestore: no blob for page")

	// The refined classifications are diagnostic: they are derived from the
	// blob's untrusted advisory fields, so an attacker can always disguise
	// one failure as another — but never as success, because the AEAD check
	// against the trusted version counter remains the sole authority.

	// ErrTruncated: the ciphertext is shorter than a sealed page can be.
	ErrTruncated = fmt.Errorf("%w: blob truncated", ErrIntegrity)
	// ErrStaleVersion: the blob advertises an eviction version older (or
	// newer) than the trusted counter expects — the shape of a replay.
	ErrStaleVersion = fmt.Errorf("%w: blob version is stale (replay?)", ErrIntegrity)
	// ErrWrongEnclave: the blob advertises another enclave's identity — it
	// was sealed under a different key and can never authenticate here.
	ErrWrongEnclave = fmt.Errorf("%w: blob sealed for a different enclave", ErrIntegrity)

	// ErrUnavailable indicates the backing store transiently refused the
	// operation (an injected outage, a withheld blob). It is an availability
	// failure, not an integrity one — it deliberately does not wrap
	// ErrIntegrity, because the right response is retry/fallback, not
	// termination-as-compromised.
	ErrUnavailable = errors.New("pagestore: backing store unavailable")
)

// BlobError attaches the failing blob's key to an error crossing a batch
// boundary, so callers of EvictBatch/FetchBatch learn which page in the
// batch failed rather than just that something did.
type BlobError struct {
	EnclaveID uint64
	VA        mmu.VAddr
	Op        string // "evict", "fetch", "drop"
	Err       error
}

// Error implements error.
func (e *BlobError) Error() string {
	return fmt.Sprintf("pagestore: %s enclave %d page %#x: %v", e.Op, e.EnclaveID, uint64(e.VA.PageBase()), e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BlobError) Unwrap() error { return e.Err }

// wrapBlobErr attaches the key unless the error already carries one (inner
// layers wrap first; outer layers pass the inner attribution through).
func wrapBlobErr(err error, op string, enclaveID uint64, va mmu.VAddr) error {
	if err == nil {
		return nil
	}
	var be *BlobError
	if errors.As(err, &be) {
		return err
	}
	return &BlobError{EnclaveID: enclaveID, VA: va, Op: op, Err: err}
}

// Blob is one sealed page as held in untrusted memory.
type Blob struct {
	Ciphertext []byte // AES-GCM ciphertext || tag
	// Version as claimed by the untrusted store. The trusted side never
	// relies on it; it is advisory (the real freshness check is the MAC
	// binding of the trusted version counter). Open uses it only to refine
	// an inevitable failure into ErrStaleVersion.
	Version uint64
	// EnclaveID as claimed by the untrusted store — advisory like Version
	// (the real binding is the per-enclave key and AAD). Open uses it only
	// to refine an inevitable failure into ErrWrongEnclave.
	EnclaveID uint64
}

// Sealer seals and opens pages for one enclave. It is trusted state: in the
// EWB/ELDU model it lives inside the CPU; in the SGXv2 software model it
// lives inside the enclave runtime.
//
// A Sealer is not safe for concurrent use: the nonce and AAD scratch below
// is reused across calls so the hot paging paths never allocate for header
// material. Every enclave owns its own Sealer, and the simulation is
// single-threaded per machine, so this costs nothing in practice.
type Sealer struct {
	aead      cipher.AEAD
	enclaveID uint64

	// Reusable header scratch. The AEAD reads nonce and additional data
	// during the call and never retains them, so handing out views of these
	// arrays is safe.
	nonceBuf [12]byte
	aadBuf   [24]byte
}

// NewSealer derives a sealing key for the enclave from a root secret.
// The derivation is a model of SGX's EGETKEY: deterministic per enclave,
// unknown to the OS.
func NewSealer(rootSecret []byte, enclaveID uint64) (*Sealer, error) {
	h := sha256.New()
	h.Write(rootSecret)
	var idb [8]byte
	binary.LittleEndian.PutUint64(idb[:], enclaveID)
	h.Write(idb[:])
	key := h.Sum(nil)[:16]
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("pagestore: deriving sealing key: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("pagestore: building AEAD: %w", err)
	}
	return &Sealer{aead: aead, enclaveID: enclaveID}, nil
}

func (s *Sealer) nonce(va mmu.VAddr, version uint64) []byte {
	n := s.nonceBuf[:]
	binary.LittleEndian.PutUint32(n[0:4], uint32(va.VPN()))
	binary.LittleEndian.PutUint64(n[4:12], version)
	return n
}

func (s *Sealer) aad(va mmu.VAddr, version uint64) []byte {
	a := s.aadBuf[:]
	binary.LittleEndian.PutUint64(a[0:8], s.enclaveID)
	binary.LittleEndian.PutUint64(a[8:16], uint64(va.PageBase()))
	binary.LittleEndian.PutUint64(a[16:24], version)
	return a
}

// EnclaveID returns the enclave identity the sealer was derived for, for
// callers assembling Blob metadata around SealAppend output.
func (s *Sealer) EnclaveID() uint64 { return s.enclaveID }

// SealedLen is the exact ciphertext length of one sealed page. Callers
// sizing arenas for SealAppend can rely on every sealed page occupying
// exactly this many bytes.
func (s *Sealer) SealedLen() int { return mmu.PageSize + s.aead.Overhead() }

// SealAppend encrypts one page for (va, version) and appends the ciphertext
// (including the tag) to dst, returning the extended slice. When dst has
// SealedLen spare capacity the call does not allocate, which is what keeps
// the paging hot paths allocation-free; the returned bytes never alias
// Sealer-internal state. len(plain) must be PageSize.
func (s *Sealer) SealAppend(dst []byte, va mmu.VAddr, version uint64, plain []byte) ([]byte, error) {
	if len(plain) != mmu.PageSize {
		return nil, fmt.Errorf("pagestore: sealing %d bytes, want %d", len(plain), mmu.PageSize)
	}
	return s.aead.Seal(dst, s.nonce(va, version), plain, s.aad(va, version)), nil
}

// Seal encrypts one page for (va, version) into a freshly allocated blob.
// len(plain) must be PageSize. Hot paths should prefer SealAppend with a
// reused buffer.
func (s *Sealer) Seal(va mmu.VAddr, version uint64, plain []byte) (Blob, error) {
	ct, err := s.SealAppend(nil, va, version, plain)
	if err != nil {
		return Blob{}, err
	}
	return Blob{Ciphertext: ct, Version: version, EnclaveID: s.enclaveID}, nil
}

// OpenAppend decrypts a blob that must have been sealed for exactly
// (va, expectVersion), appending the plaintext page to dst and returning the
// extended slice. When dst has PageSize spare capacity the call does not
// allocate. The returned bytes live in dst's backing array (never in
// Sealer-internal scratch), so reusing the same buffer across calls is safe
// as long as the previous result has been consumed.
//
// Any tampered, replayed or mis-bound blob fails with an error matching
// ErrIntegrity; when the blob's (untrusted, advisory) metadata reveals the
// failure mode, the error is refined to ErrTruncated, ErrStaleVersion or
// ErrWrongEnclave — all of which wrap ErrIntegrity, so the security decision
// never depends on the refinement.
func (s *Sealer) OpenAppend(dst []byte, va mmu.VAddr, expectVersion uint64, b Blob) ([]byte, error) {
	if len(b.Ciphertext) < mmu.PageSize+s.aead.Overhead() {
		return nil, ErrTruncated
	}
	plain, err := s.aead.Open(dst, s.nonce(va, expectVersion), b.Ciphertext, s.aad(va, expectVersion))
	if err != nil {
		switch {
		case b.EnclaveID != s.enclaveID:
			return nil, ErrWrongEnclave
		case b.Version != expectVersion:
			return nil, ErrStaleVersion
		}
		return nil, ErrIntegrity
	}
	return plain, nil
}

// Open decrypts a blob into a freshly allocated page. See OpenAppend for
// the verification semantics; hot paths should prefer OpenAppend with a
// reused buffer.
func (s *Sealer) Open(va mmu.VAddr, expectVersion uint64, b Blob) ([]byte, error) {
	return s.OpenAppend(nil, va, expectVersion, b)
}

// Store is the untrusted in-regular-memory repository of sealed pages, keyed
// by (enclave, page). Being untrusted, it offers mutation hooks (Corrupt,
// Replay) that attack tests use to verify the trusted side rejects bad blobs.
type Store struct {
	blobs map[storeKey]Blob
	// history snapshots every blob the store has ever seen — the store is
	// attacker-controlled memory, and an attacker copies blobs as they
	// arrive — so replay attacks can be expressed even across deletes.
	history map[storeKey][]Blob
}

type storeKey struct {
	enclaveID uint64
	vpn       uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		blobs:   make(map[storeKey]Blob),
		history: make(map[storeKey][]Blob),
	}
}

func key(enclaveID uint64, va mmu.VAddr) storeKey {
	return storeKey{enclaveID: enclaveID, vpn: va.VPN()}
}

// Put stores the sealed blob for a page, snapshotting it into the
// attacker's archive. The ciphertext is copied once (shared by the current
// slot and the archive): per the PagingBackend ownership contract, the
// caller's buffer is only valid for the duration of the call.
func (st *Store) Put(enclaveID uint64, va mmu.VAddr, b Blob) {
	k := key(enclaveID, va)
	ct := make([]byte, len(b.Ciphertext))
	copy(ct, b.Ciphertext)
	b.Ciphertext = ct
	st.history[k] = append(st.history[k], b)
	st.blobs[k] = b
}

// Get returns the current blob for a page.
func (st *Store) Get(enclaveID uint64, va mmu.VAddr) (Blob, error) {
	b, ok := st.blobs[key(enclaveID, va)]
	if !ok {
		return Blob{}, ErrNotFound
	}
	return b, nil
}

// Delete removes the blob for a page (after a successful page-in).
func (st *Store) Delete(enclaveID uint64, va mmu.VAddr) {
	delete(st.blobs, key(enclaveID, va))
}

// Len reports how many pages are currently swapped out across all enclaves.
func (st *Store) Len() int { return len(st.blobs) }

// Corrupt flips a byte of the stored ciphertext — an active attack on the
// backing store. Reports whether a blob existed.
func (st *Store) Corrupt(enclaveID uint64, va mmu.VAddr) bool {
	k := key(enclaveID, va)
	b, ok := st.blobs[k]
	if !ok || len(b.Ciphertext) == 0 {
		return false
	}
	ct := make([]byte, len(b.Ciphertext))
	copy(ct, b.Ciphertext)
	ct[0] ^= 0xff
	st.blobs[k] = Blob{Ciphertext: ct, Version: b.Version, EnclaveID: b.EnclaveID}
	return true
}

// Replay replaces the current blob with the oldest archived one — the
// classic rollback attack. Reports whether an older archived blob existed.
func (st *Store) Replay(enclaveID uint64, va mmu.VAddr) bool {
	k := key(enclaveID, va)
	hist := st.history[k]
	if len(hist) < 2 {
		return false
	}
	st.blobs[k] = hist[0]
	return true
}
