// Package orderly is an explicit-state model checker for the enclave
// lifecycle. It drives the real hostos.Kernel, sgx.CPU and libos APIs —
// load, run, suspend/resume, checkpoint/restore, destroy, synthetic fault
// and timer deliveries, backing-store tampering, backend swaps and (in
// Crash scenarios) host crash-stop with blind watchdog detection — through
// exhaustively enumerated adversarial interleavings, and checks every step
// against a declarative expectation table (spec.go): legal prefixes
// succeed, illegal reorderings return their documented sentinels, and
// nothing ever panics or silently succeeds.
//
// The checker is a bounded DFS over operation sequences. Each explored
// node is one executed trace prefix (an "interleaving"); a fresh machine
// is built and the whole prefix replayed for every node, so no hidden
// state leaks between branches and the exploration order is a pure
// function of the spec — byte-identical at any -jobs. States are
// canonicalised by a digest over the lifecycle phase, the tamper and
// checkpoint flags, the backing store size and the kernel's residency
// fingerprint; branches that land on an already-seen digest are pruned.
//
// Abstractions (deliberate, documented):
//   - Timing is not part of the state: the digest ignores clock cycles and
//     TLB contents, which never influence which sentinel an operation
//     returns. Page-table A/D bits (legacy CLOCK metadata) are likewise
//     abstracted — they pick victims, not outcomes.
//   - (op, state) combinations the spec has no row for are skipped and
//     counted, never silently explored: the spec table is the single
//     source of which orderings are defined behaviour.
package orderly

import (
	"fmt"
	"strings"

	"autarky/internal/core"
	"autarky/internal/fleet"
	"autarky/internal/hostos"
	"autarky/internal/libos"
	"autarky/internal/mmu"
	"autarky/internal/pagestore"
	"autarky/internal/sgx"
	"autarky/internal/sim"
)

// Op is one lifecycle operation the checker can schedule. The alphabet
// mixes the legitimate API surface with the attacker's moves (tampering
// with sealed blobs, delivering spurious faults/timers) — orderliness is
// only meaningful against an adversarial scheduler.
type Op uint8

// The operation alphabet.
const (
	// OpLoad loads the scenario's enclave image.
	OpLoad Op = iota
	// OpLoadBad attempts a load with a contradictory configuration
	// (ElideAEX without SelfPaging); it must fail field-specifically and
	// touch nothing.
	OpLoadBad
	// OpRun enters the enclave and touches every heap page.
	OpRun
	// OpSuspend swaps the whole enclave out (kernel memory pressure).
	OpSuspend
	// OpResume restores enclave-managed pages and marks it runnable.
	OpResume
	// OpCheckpoint captures a sealed checkpoint of the process.
	OpCheckpoint
	// OpRestore rebuilds the process from the last checkpoint.
	OpRestore
	// OpRestoreBad attempts a restore from a bit-flipped checkpoint blob.
	OpRestoreBad
	// OpDestroy tears the (dead) enclave down.
	OpDestroy
	// OpFault delivers a synthetic page fault for the first heap page —
	// the OS claiming a fault the hardware never raised.
	OpFault
	// OpTimer delivers a synthetic preemption-timer AEX.
	OpTimer
	// OpTamper corrupts (or, in replay scenarios, rolls back) the sealed
	// blob of the first evicted heap page.
	OpTamper
	// OpTamperPinned corrupts the blob of an evicted enclave-managed
	// stack/code page (only possible while suspended).
	OpTamperPinned
	// OpSwapBackend re-installs the paging backend — legal only with no
	// enclaves resident.
	OpSwapBackend
	// OpQuiesce seals the process for migration, retiring the source
	// incarnation (only in Migration scenarios).
	OpQuiesce
	// OpAdopt rebuilds the process from the last migration envelope under
	// the world's counter service; replaying a committed envelope probes
	// the freshness check.
	OpAdopt
	// OpCrash crash-stops the host under the running incarnation (only in
	// Crash scenarios). Nature's move: it always lands, and from then on
	// the incarnation is unreachable — only the watchdog edges below can
	// observe or recover it.
	OpCrash
	// OpHeartbeat is the supervisor's blind liveness probe: it answers on
	// a host that is up and misses (ErrHeartbeatMissed) on one that is
	// down. Two consecutive misses are the death certificate failover
	// requires.
	OpHeartbeat
	// OpFailover is the supervisor's recovery move: fence the lost
	// incarnation's leftover registration and restore the latest
	// checkpoint into the vacated range. Attempted without a death
	// certificate it is the split-brain probe — the live (or
	// not-yet-declared-dead) incarnation refuses it.
	OpFailover

	// NumOps is the alphabet size.
	NumOps
)

var opNames = [NumOps]string{
	"load", "load-bad", "run", "suspend", "resume", "checkpoint",
	"restore", "restore-bad", "destroy", "fault", "timer", "tamper",
	"tamper-pinned", "swap-backend", "quiesce", "adopt", "crash",
	"heartbeat", "failover",
}

// String names the operation (stable: counterexample traces parse by name).
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// opByName resolves a trace token back to an Op.
func opByName(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s {
			return Op(i), true
		}
	}
	return 0, false
}

// Phase is the abstract lifecycle phase the spec keys on. It is derived
// from concrete machine state after every step, never tracked shadow-side.
type Phase int8

// The lifecycle phases. PhaseAny is deliberately the zero value: a rule
// that does not set Next asserts nothing about the resulting phase.
const (
	// PhaseAny is the wildcard in spec rows.
	PhaseAny Phase = iota
	// PhaseAbsent: no enclave was ever loaded.
	PhaseAbsent
	// PhaseLoaded: alive and runnable.
	PhaseLoaded
	// PhaseSuspended: swapped out wholesale by the kernel.
	PhaseSuspended
	// PhaseDead: the trusted runtime terminated it; not yet destroyed.
	PhaseDead
	// PhaseDestroyed: torn down; the handle is stale.
	PhaseDestroyed
	// PhaseMigrated: sealed and handed off; the incarnation is retired and
	// its address range is vacant, but the handle still answers (with
	// ErrMigrated).
	PhaseMigrated
	// PhaseCrashed: the host under the incarnation crash-stopped. The
	// enclave's kernel registration is intact but unreachable; only the
	// watchdog edges (heartbeat, failover) are defined here.
	PhaseCrashed
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseAny:
		return "any"
	case PhaseAbsent:
		return "absent"
	case PhaseLoaded:
		return "loaded"
	case PhaseSuspended:
		return "suspended"
	case PhaseDead:
		return "dead"
	case PhaseDestroyed:
		return "destroyed"
	case PhaseMigrated:
		return "migrated"
	case PhaseCrashed:
		return "crashed"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Scenario fixes the machine-level knobs one exploration runs under. The
// spec rows condition on the derived properties (self-paging, quota
// tightness, replay), so one table covers every scenario.
type Scenario struct {
	// Name keys the scenario in traces and tables.
	Name string
	// SelfPaging loads an Autarky enclave; false loads legacy SGX.
	SelfPaging bool
	// Mech selects the SGXv1 or SGXv2 paging mechanism.
	Mech core.Mech
	// QuotaPages caps resident EPC frames (0 = roomy: everything fits).
	QuotaPages int
	// HeapPages sizes the enclave heap the workload touches.
	HeapPages int
	// Replay makes OpTamper roll blobs back instead of corrupting them.
	Replay bool
	// Migration enables the quiesce/adopt alphabet (the live-migration
	// handshake and its misuse edges).
	Migration bool
	// Crash enables the chaos alphabet (crash-stop, heartbeat, failover):
	// the checker interleaves host failure and blind detection with the
	// rest of the lifecycle.
	Crash bool
}

// Tight reports whether the quota forces paging traffic.
func (s Scenario) Tight() bool { return s.QuotaPages > 0 }

// DefaultScenarios is the checked matrix: legacy vs self-paging, SGXv1 vs
// SGXv2, roomy vs quota-tight, corruption vs rollback.
func DefaultScenarios() []Scenario {
	return []Scenario{
		{Name: "legacy", Mech: core.MechSGX1, QuotaPages: 6, HeapPages: 6},
		{Name: "legacy-roomy", Mech: core.MechSGX1, HeapPages: 6},
		{Name: "sp-sgx1", SelfPaging: true, Mech: core.MechSGX1, QuotaPages: 6, HeapPages: 6},
		{Name: "sp-sgx1-roomy", SelfPaging: true, Mech: core.MechSGX1, HeapPages: 6},
		{Name: "sp-sgx2", SelfPaging: true, Mech: core.MechSGX2, QuotaPages: 6, HeapPages: 6},
		{Name: "sp-sgx1-replay", SelfPaging: true, Mech: core.MechSGX1, QuotaPages: 6, HeapPages: 6, Replay: true},
		{Name: "sp-migrate", SelfPaging: true, Mech: core.MechSGX1, QuotaPages: 6, HeapPages: 6, Migration: true},
		{Name: "sp-crash", SelfPaging: true, Mech: core.MechSGX1, QuotaPages: 6, HeapPages: 6, Migration: true, Crash: true},
	}
}

// watchdogBeats is how many consecutive missed heartbeats constitute a
// death certificate — the model mirrors the chaos supervisor's two-deadline
// discipline (suspect on the first silence, declare dead on the second).
const watchdogBeats = 2

// ScenarioByName resolves a scenario from DefaultScenarios.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range DefaultScenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// errSkip marks an operation that is structurally impossible in the
// current state (no checkpoint to restore, no blob to tamper with). The
// checker counts it as skipped; it is never an outcome.
var errSkip = fmt.Errorf("orderly: operation not applicable")

// world is one concrete machine under exploration: a full Autarky machine
// (clock, EPC, CPU, kernel) plus the attacker-visible bookkeeping the spec
// conditions on. Every trace replay builds a fresh world.
type world struct {
	sc     Scenario
	clock  *sim.Clock
	costs  sim.Costs
	kernel *hostos.Kernel

	// proc is the last process handle handed out. It deliberately goes
	// stale after destroy — replaying API calls on stale handles is
	// exactly what the checker probes.
	proc      *libos.Process
	cp        *libos.Checkpoint
	destroyed bool
	// mig is the last migration envelope sealed by OpQuiesce; migCommitted
	// marks it spent (a successful OpAdopt bumped the counter service, so
	// replaying it must be refused as stale).
	mig          *libos.Migration
	migCommitted bool
	counters     *sgx.CounterService
	// tamperedHeap: a sealed blob of a (policy-paged) heap page was
	// tampered with and not yet re-fetched or dropped.
	tamperedHeap bool
	// tamperedPinned: a blob of an enclave-managed pinned page was
	// tampered with while the enclave was suspended.
	tamperedPinned bool
	// ranSinceLoad: the incarnation has executed at least once. On the
	// SGXv2 software path only runtime-evicted blobs are ever read back
	// (kernel load-spill blobs are re-EAUGed zero-filled, which is the
	// correct content for never-written pages), and runtime evictions
	// exist only after a run — so OpTamper gates on this for SGXv2.
	ranSinceLoad bool
	// hostDown: the host under the incarnation crash-stopped (OpCrash).
	// This is chaos-model ground truth, like the fleet's NodeState: the
	// supervisor's moves never read it directly, they observe it through
	// missed heartbeats.
	hostDown bool
	// missedBeats counts consecutive heartbeat misses since the crash;
	// reaching watchdogBeats is the death certificate.
	missedBeats int
}

func newWorld(sc Scenario) *world {
	w := &world{sc: sc, clock: sim.NewClock(), costs: sim.DefaultCosts(),
		counters: sgx.NewCounterService()}
	pt := mmu.NewPageTable(w.clock, &w.costs)
	tlb := mmu.NewTLB(16, 4, w.clock, &w.costs)
	epc := sgx.NewEPC(0x1000, 512)
	reg := sgx.NewRegularMemory(1 << 30)
	cpu := sgx.NewCPU(w.clock, &w.costs, tlb, pt, epc, reg, []byte("orderly-root"))
	w.kernel = hostos.NewKernel(cpu, pt, pagestore.NewStore(), w.clock, &w.costs)
	return w
}

// image is the tiny enclave image every scenario loads: one code page,
// HeapPages of heap, two stack pages (explicit, so pinned pages fit inside
// tight quotas).
func (w *world) image() libos.AppImage {
	return libos.AppImage{
		Name:       "orderly",
		Libraries:  []libos.Library{{Name: "code", Pages: 1}},
		HeapPages:  w.sc.HeapPages,
		StackPages: 2,
	}
}

func (w *world) config(bad bool) libos.Config {
	cfg := libos.Config{
		SelfPaging: w.sc.SelfPaging,
		Mech:       w.sc.Mech,
		QuotaPages: w.sc.QuotaPages,
	}
	if w.sc.SelfPaging {
		cfg.Policy = libos.PolicyRateLimit
		cfg.RateLimitBurst = 1 << 30 // rate never terminates; integrity may
	}
	if bad {
		// The documented contradiction: ElideAEX is a self-paging fault
		// path optimization; requesting it on a legacy enclave must be
		// rejected by name before any machine state is touched.
		cfg.SelfPaging = false
		cfg.Policy = libos.PolicyPinAll
		cfg.ElideAEX = true
	}
	return cfg
}

// phase derives the abstract lifecycle phase from concrete machine state.
func (w *world) phase() Phase {
	if w.proc == nil {
		return PhaseAbsent
	}
	if w.destroyed {
		return PhaseDestroyed
	}
	if w.hostDown {
		return PhaseCrashed
	}
	if dead, reason, _ := w.proc.Proc.E.Dead(); dead {
		if reason == sgx.TerminateMigrated {
			return PhaseMigrated
		}
		return PhaseDead
	}
	if w.proc.Proc.Suspended() {
		return PhaseSuspended
	}
	return PhaseLoaded
}

// cond is the spec-matching condition: the phase plus the tri-state flag
// inputs.
type cond struct {
	Phase          Phase
	SelfPaging     bool
	Tight          bool
	TamperedHeap   bool
	TamperedPinned bool
	HasCheckpoint  bool
	// MigFresh: a migration envelope exists whose epoch the counter
	// service has not committed yet (only a fresh envelope may adopt).
	MigFresh bool
	// WatchdogExpired: the supervisor holds a death certificate — the
	// host has missed watchdogBeats consecutive heartbeats.
	WatchdogExpired bool
}

func (w *world) cond() cond {
	return cond{
		Phase:           w.phase(),
		SelfPaging:      w.sc.SelfPaging,
		Tight:           w.sc.Tight(),
		TamperedHeap:    w.tamperedHeap,
		TamperedPinned:  w.tamperedPinned,
		HasCheckpoint:   w.cp != nil,
		MigFresh:        w.mig != nil && !w.migCommitted,
		WatchdogExpired: w.hostDown && w.missedBeats >= watchdogBeats,
	}
}

// chunk is the workload one OpRun executes: touch every heap page, then
// one unit of progress. It drives the real access path, so evicted pages
// are fetched — and tampered blobs detected — exactly as in production.
func (w *world) chunk() func(*core.Context) {
	heap := w.proc.Heap.PageVAs()
	return func(ctx *core.Context) {
		for _, va := range heap {
			ctx.Load(va)
		}
		ctx.Progress(1)
	}
}

// apply executes one operation against the live machine and returns its
// raw outcome. It returns errSkip when the operation is structurally
// impossible (nothing to restore, nothing to tamper with); every other
// return value — nil included — is an outcome the spec must account for.
func (w *world) apply(op Op) error {
	k := w.kernel
	switch op {
	case OpLoad:
		p, err := libos.Load(k, w.clock, &w.costs, w.image(), w.config(false))
		if err == nil {
			w.proc, w.destroyed = p, false
			w.tamperedHeap, w.tamperedPinned = false, false
			w.ranSinceLoad = false
		}
		return err

	case OpLoadBad:
		_, err := libos.Load(k, w.clock, &w.costs, w.image(), w.config(true))
		return err

	case OpRun:
		if w.proc == nil {
			return k.Run(&hostos.Proc{})
		}
		err := w.proc.Run(w.chunk())
		if err == nil {
			w.ranSinceLoad = true
		}
		return err

	case OpSuspend:
		var err error
		if w.proc == nil {
			_, err = k.SuspendEnclave(nil)
		} else {
			_, err = k.SuspendEnclave(w.proc.Proc)
		}
		return err

	case OpResume:
		if w.proc == nil {
			return k.ResumeEnclave(nil)
		}
		return k.ResumeEnclave(w.proc.Proc)

	case OpCheckpoint:
		if w.proc == nil {
			return errSkip
		}
		cp, err := w.proc.Checkpoint()
		if err == nil {
			w.cp = cp
		}
		return err

	case OpRestore:
		if w.cp == nil {
			return errSkip
		}
		p, err := libos.Restore(k, w.clock, &w.costs, w.cp)
		if err == nil {
			w.proc, w.destroyed = p, false
			w.tamperedHeap, w.tamperedPinned = false, false
			w.ranSinceLoad = false
		}
		return err

	case OpRestoreBad:
		if w.cp == nil {
			return errSkip
		}
		bad := &libos.Checkpoint{Sealed: append([]byte(nil), w.cp.Sealed...)}
		bad.Sealed[len(bad.Sealed)/2] ^= 0x01
		_, err := libos.Restore(k, w.clock, &w.costs, bad)
		return err

	case OpDestroy:
		if w.proc == nil {
			return k.DestroyEnclave(nil)
		}
		err := k.DestroyEnclave(w.proc.Proc)
		if err == nil {
			w.destroyed = true
			// Destroy drops the enclave's sealed blobs; whatever the
			// attacker tampered with is gone with them.
			w.tamperedHeap, w.tamperedPinned = false, false
		}
		return err

	case OpFault:
		if w.proc == nil {
			return errSkip
		}
		f := &mmu.Fault{Addr: w.proc.Heap.Page(0), Type: mmu.AccessRead, NotPresent: true}
		return k.HandlePageFault(k.CPU, w.proc.Proc.E, w.proc.Proc.TCS, f)

	case OpTimer:
		if w.proc == nil {
			return errSkip
		}
		return k.HandleTimer(k.CPU, w.proc.Proc.E, w.proc.Proc.TCS)

	case OpTamper:
		// One tamper per incarnation: Corrupt flips a bit, so a second
		// corruption of the same blob would undo the first.
		if w.proc == nil || w.tamperedHeap {
			return errSkip
		}
		// SGXv2, loaded: blobs of pages spilled by the kernel during load
		// are never read back (see ranSinceLoad); tampering them is inert,
		// so the attack only becomes available once runtime evictions
		// exist. Suspension re-evicts through the kernel EWB path, whose
		// blobs resume always authenticates — no gate there.
		if w.sc.SelfPaging && w.sc.Mech == core.MechSGX2 &&
			w.phase() == PhaseLoaded && !w.ranSinceLoad {
			return errSkip
		}
		id := w.proc.Proc.E.ID
		for _, va := range w.proc.Heap.PageVAs() {
			if resident, _, ok := w.proc.Proc.Page(va); !ok || resident {
				continue
			}
			hit := false
			if w.sc.Replay {
				hit = k.Store.Replay(id, va)
			} else {
				hit = k.Store.Corrupt(id, va)
			}
			if hit {
				w.tamperedHeap = true
				return nil
			}
		}
		return errSkip

	case OpTamperPinned:
		if w.proc == nil || w.tamperedPinned {
			return errSkip
		}
		id := w.proc.Proc.E.ID
		for _, va := range w.proc.Stack.PageVAs() {
			resident, managed, ok := w.proc.Proc.Page(va)
			if !ok || resident || !managed {
				continue
			}
			if k.Store.Corrupt(id, va) {
				w.tamperedPinned = true
				return nil
			}
		}
		return errSkip

	case OpSwapBackend:
		// Re-installing the terminal store is a semantic no-op, so the
		// only observable is the ordering rule: refused with enclaves
		// resident, accepted otherwise.
		return k.SetBackend(k.Store)

	case OpQuiesce:
		if !w.sc.Migration || w.proc == nil {
			return errSkip
		}
		mig, err := w.proc.Migrate()
		if err == nil {
			w.mig, w.migCommitted = mig, false
			// The seal drove the real access path; the incarnation whose
			// blobs could have been tampered with is retired with them.
			w.tamperedHeap, w.tamperedPinned = false, false
		}
		return err

	case OpAdopt:
		if w.mig == nil {
			return errSkip
		}
		p, err := libos.Adopt(k, w.clock, &w.costs, w.mig, w.counters)
		if err == nil {
			w.proc, w.destroyed = p, false
			w.tamperedHeap, w.tamperedPinned = false, false
			w.ranSinceLoad = false
			w.migCommitted = true
		}
		return err

	case OpCrash:
		// Nature's move: the host crash-stops under a running incarnation.
		// Crash-while-suspended is a documented gap (the one-machine fence
		// below cannot retire a suspended registration).
		if !w.sc.Crash || w.hostDown || w.phase() != PhaseLoaded {
			return errSkip
		}
		w.hostDown, w.missedBeats = true, 0
		return nil

	case OpHeartbeat:
		// The supervisor's blind probe: it observes only silence, never
		// the hostDown flag itself.
		if !w.sc.Crash {
			return errSkip
		}
		if w.hostDown {
			w.missedBeats++
			return fleet.ErrHeartbeatMissed
		}
		w.missedBeats = 0
		return nil

	case OpFailover:
		if !w.sc.Crash || w.cp == nil {
			return errSkip
		}
		if w.hostDown && w.missedBeats >= watchdogBeats {
			// Death certificate in hand: fence the lost incarnation —
			// retire its leftover registration exactly as a failed-over
			// machine disappears from the fleet, vacating the range the
			// checkpoint restores into.
			if err := k.RetireEnclave(w.proc.Proc); err != nil {
				return err
			}
		}
		// Without the certificate this is the split-brain probe: a blind
		// restore onto a range whose incarnation was never declared dead.
		p, err := libos.Restore(k, w.clock, &w.costs, w.cp)
		if err == nil {
			w.proc, w.destroyed = p, false
			w.tamperedHeap, w.tamperedPinned = false, false
			w.ranSinceLoad = false
			w.hostDown, w.missedBeats = false, 0
		}
		return err
	}
	return errSkip
}

// applySafe runs apply under a recover: a panic is never a legal outcome,
// so it surfaces as a distinguished error the spec can only ever violate.
func (w *world) applySafe(op Op) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			err = fmt.Errorf("orderly: panic in %s: %v", op, r)
		}
	}()
	return w.apply(op), false
}

// digest canonicalises the world's current state. Everything that can
// influence a future spec outcome is folded in; timing and replacement
// metadata are deliberately abstracted (see the package comment).
func (w *world) digest() uint64 {
	var b strings.Builder
	b.WriteString(w.phase().String())
	fmt.Fprintf(&b, "|th=%v|tp=%v|cp=%v|ran=%v|store=%d",
		w.tamperedHeap, w.tamperedPinned, w.cp != nil, w.ranSinceLoad, w.kernel.Store.Len())
	if w.mig != nil {
		fmt.Fprintf(&b, "|mig=%v", w.migCommitted)
	}
	if w.sc.Crash {
		// Missed beats beyond the death certificate behave identically, so
		// the digest caps them — otherwise every extra heartbeat on a dead
		// host would mint a "new" state and defeat pruning.
		beats := w.missedBeats
		if beats > watchdogBeats {
			beats = watchdogBeats
		}
		fmt.Fprintf(&b, "|down=%v|beats=%d", w.hostDown, beats)
	}
	if w.proc != nil && !w.destroyed {
		fmt.Fprintf(&b, "|prog=%d|fp=%x",
			w.proc.Runtime.Progress(), w.proc.Proc.ResidencyFingerprint())
		if dead, reason, _ := w.proc.Proc.E.Dead(); dead {
			fmt.Fprintf(&b, "|dead=%s", reason)
		}
	}
	return fnvFold(0, b.String())
}

// fnvFold extends an FNV-1a hash with s (seed 0 starts a fresh hash).
func fnvFold(h uint64, s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	if h == 0 {
		h = offset64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
