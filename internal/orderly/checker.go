package orderly

import (
	"fmt"

	"autarky/internal/metrics"
)

// Config parameterises one exploration.
type Config struct {
	// Scenario fixes the machine under test.
	Scenario Scenario
	// Spec is the orderliness model (nil = DefaultSpec).
	Spec *Spec
	// MaxDepth bounds trace length.
	MaxDepth int
}

// Result summarises one exploration. All counters are deterministic
// functions of (Scenario, Spec, MaxDepth, FirstOp).
type Result struct {
	Scenario string
	// Interleavings is the number of executed trace prefixes (DFS nodes).
	Interleavings int
	// States is the number of distinct canonical state digests reached.
	States int
	// Transitions is the total number of operations applied, replays
	// included — the raw work the exploration did.
	Transitions int
	// Pruned counts branches cut because their digest was already seen.
	Pruned int
	// Skipped counts (op, state) combinations with no spec row (or that
	// were structurally impossible); they are visible here, not silently
	// explored.
	Skipped int
	// Outcome class tallies across executed steps.
	OKs, Refusals, Terminations int
	// Violations holds one replayable counterexample per divergence.
	Violations []Counterexample
	// Digest folds every executed trace and its outcome into one
	// order-sensitive hash — the cross-jobs determinism witness.
	Digest uint64
	// LastSnapshot is the metrics snapshot of the final replayed machine
	// (valid when HasSnapshot; an all-skipped shard has no machine).
	LastSnapshot metrics.Snapshot
	HasSnapshot  bool
}

// stepOutcome is what one applied operation produced.
type stepOutcome struct {
	err       error
	panicked  bool
	violation string // non-empty = spec divergence
	want      Want
	phase     Phase // phase before the op
}

// class buckets the outcome for the tally columns.
func (s stepOutcome) class() string {
	switch {
	case s.panicked:
		return "panic"
	case s.violation != "":
		return "violation"
	case s.err == nil:
		return "ok"
	case s.want.Kind == WantTerm:
		return "term"
	default:
		return "refused"
	}
}

// runTrace replays one full trace on a fresh world. It returns the
// outcome of every executed step, whether the final op was skipped, and
// the world (for digesting). A violation at any step stops the replay
// there — the suffix of a broken prefix proves nothing.
func runTrace(spec *Spec, sc Scenario, trace []Op) (steps []stepOutcome, skippedAt int, w *world) {
	w = newWorld(sc)
	skippedAt = -1
	for i, op := range trace {
		c := w.cond()
		rule, found := spec.Rule(op, c)
		if !found {
			skippedAt = i
			return
		}
		err, panicked := w.applySafe(op)
		if err == errSkip {
			skippedAt = i
			return
		}
		out := stepOutcome{err: err, panicked: panicked, want: rule.Want, phase: c.Phase}
		out.violation = rule.Want.check(err, panicked)
		if out.violation == "" && rule.Next != PhaseAny {
			if got := w.phase(); got != rule.Next {
				out.violation = fmt.Sprintf("landed in phase %s, want %s", got, rule.Next)
			}
		}
		steps = append(steps, out)
		if out.violation != "" {
			return
		}
	}
	return
}

// Run explores every spec-covered interleaving of the scenario up to
// MaxDepth, replaying each prefix on a fresh machine, and reports the
// exploration statistics plus any spec violations as counterexamples.
func Run(cfg Config) Result {
	spec := cfg.Spec
	if spec == nil {
		spec = DefaultSpec()
	}
	res := Result{Scenario: cfg.Scenario.Name}
	seen := make(map[uint64]bool)

	var dfs func(prefix []Op)
	dfs = func(prefix []Op) {
		for op := Op(0); op < NumOps; op++ {
			trace := append(append([]Op(nil), prefix...), op)
			steps, skippedAt, w := runTrace(spec, cfg.Scenario, trace)
			res.Transitions += len(steps)
			if skippedAt >= 0 {
				res.Skipped++
				continue
			}
			res.Interleavings++
			last := steps[len(steps)-1]
			switch last.class() {
			case "ok":
				res.OKs++
			case "term":
				res.Terminations++
			case "refused":
				res.Refusals++
			}
			res.Digest = fnvFold(res.Digest, FormatTrace(cfg.Scenario.Name, trace))
			res.Digest = fnvFold(res.Digest, "="+last.class())
			if last.violation != "" {
				res.Violations = append(res.Violations, Counterexample{
					Scenario: cfg.Scenario.Name,
					Trace:    append([]Op(nil), trace...),
					Step:     len(trace) - 1,
					Phase:    last.phase,
					Got:      last.violation,
					Want:     last.want.String(),
				})
				continue
			}
			d := w.digest()
			res.Digest = fnvFold(res.Digest, fmt.Sprintf("@%x", d))
			res.LastSnapshot = metrics.Of(w.clock).Snapshot()
			res.HasSnapshot = true
			if seen[d] {
				res.Pruned++
				continue
			}
			seen[d] = true
			res.States++
			if len(trace) < cfg.MaxDepth {
				dfs(trace)
			}
		}
	}
	dfs(nil)
	return res
}
