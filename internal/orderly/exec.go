package orderly

import "autarky/internal/metrics"

// StepOutcome is one executed step of ExecuteTrace: the operation, the
// lifecycle phase it was applied in, its outcome class ("ok", "refused",
// "term", "violation", "panic") and the error text ("" on success).
type StepOutcome struct {
	Op    Op
	Phase Phase
	Class string
	Err   string
}

// ExecuteTrace replays one checker-format trace on a fresh machine, judges
// it against the default spec, and returns the executed steps, any
// divergence (nil when the implementation conforms), and the final
// machine's metrics snapshot. The e7 attack suite uses it to drive its
// ordering attacks from the same traces the model checker explores, so an
// attack sequence reported there is by construction one the checker has
// verified — and a counterexample printed by the checker can be pasted
// straight into the suite.
func ExecuteTrace(sc Scenario, trace []Op) ([]StepOutcome, *Counterexample, metrics.Snapshot) {
	steps, _, w := runTrace(DefaultSpec(), sc, trace)
	snap := metrics.Of(w.clock).Snapshot()
	out := make([]StepOutcome, len(steps))
	for i, s := range steps {
		o := StepOutcome{Op: trace[i], Phase: s.phase, Class: s.class()}
		if s.err != nil {
			o.Err = s.err.Error()
		}
		out[i] = o
	}
	return out, Replay(nil, sc, trace), snap
}
