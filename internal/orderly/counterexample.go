package orderly

import (
	"fmt"
	"strings"
)

// Counterexample is one replayable spec divergence: the scenario, the
// exact operation sequence, and what went wrong at the violating step.
// Its trace format ("scenario:op>op>op") round-trips through ParseTrace,
// so a failing exploration can be turned into a standalone regression
// test with GoSource.
type Counterexample struct {
	Scenario string
	Trace    []Op
	// Step indexes the violating operation within Trace.
	Step int
	// Phase is the lifecycle phase the violating op was applied in.
	Phase Phase
	// Got describes the observed divergence; Want the spec's expectation.
	Got  string
	Want string
}

// TraceString renders the machine-readable trace key.
func (c Counterexample) TraceString() string {
	return FormatTrace(c.Scenario, c.Trace)
}

// String renders the full human-readable counterexample.
func (c Counterexample) String() string {
	return fmt.Sprintf("%s @%d (%s, in %s): got %s, want %s",
		c.TraceString(), c.Step, c.Trace[c.Step], c.Phase, c.Got, c.Want)
}

// FormatTrace renders "scenario:op>op>op".
func FormatTrace(scenario string, trace []Op) string {
	names := make([]string, len(trace))
	for i, op := range trace {
		names[i] = op.String()
	}
	return scenario + ":" + strings.Join(names, ">")
}

// ParseTrace parses "scenario:op>op>op" back into a scenario (resolved
// from DefaultScenarios) and an operation sequence.
func ParseTrace(s string) (Scenario, []Op, error) {
	name, rest, found := strings.Cut(s, ":")
	if !found {
		return Scenario{}, nil, fmt.Errorf("orderly: trace %q has no scenario prefix", s)
	}
	sc, ok := ScenarioByName(name)
	if !ok {
		return Scenario{}, nil, fmt.Errorf("orderly: unknown scenario %q", name)
	}
	var trace []Op
	for _, tok := range strings.Split(rest, ">") {
		op, ok := opByName(strings.TrimSpace(tok))
		if !ok {
			return Scenario{}, nil, fmt.Errorf("orderly: unknown operation %q in trace %q", tok, s)
		}
		trace = append(trace, op)
	}
	if len(trace) == 0 {
		return Scenario{}, nil, fmt.Errorf("orderly: empty trace %q", s)
	}
	return sc, trace, nil
}

// Replay re-executes one trace on a fresh machine and judges every step
// against the spec. It returns nil when the implementation conforms, and
// the divergence as a counterexample otherwise. A trace that runs into a
// spec gap (no row, or a structurally impossible op) is reported as a
// counterexample too — a reproducer must never silently shorten.
func Replay(spec *Spec, sc Scenario, trace []Op) *Counterexample {
	if spec == nil {
		spec = DefaultSpec()
	}
	steps, skippedAt, _ := runTrace(spec, sc, trace)
	if skippedAt >= 0 {
		return &Counterexample{
			Scenario: sc.Name,
			Trace:    append([]Op(nil), trace...),
			Step:     skippedAt,
			Phase:    PhaseAny,
			Got:      "operation not covered by the spec in this state",
			Want:     "a spec row (the trace no longer reaches the recorded state)",
		}
	}
	last := steps[len(steps)-1]
	if last.violation == "" {
		return nil
	}
	return &Counterexample{
		Scenario: sc.Name,
		Trace:    append([]Op(nil), trace...),
		Step:     len(steps) - 1,
		Phase:    last.phase,
		Got:      last.violation,
		Want:     last.want.String(),
	}
}

// GoSource renders the counterexample as a standalone failing Go test:
// drop the output into internal/orderly as a _test.go file and `go test`
// fails with this exact divergence until the implementation (or the spec)
// is fixed.
func (c Counterexample) GoSource() string {
	name := strings.NewReplacer("-", "_", ":", "_", ">", "_").Replace(c.TraceString())
	return fmt.Sprintf(`package orderly_test

// Code generated from an orderliness counterexample; edit the spec or the
// implementation, not this file.
//
// Divergence at generation time:
//	%s

import (
	"testing"

	"autarky/internal/orderly"
)

func TestCounterexample_%s(t *testing.T) {
	sc, trace, err := orderly.ParseTrace(%q)
	if err != nil {
		t.Fatal(err)
	}
	if cx := orderly.Replay(orderly.DefaultSpec(), sc, trace); cx != nil {
		t.Fatalf("spec violation: %%s", cx)
	}
}
`, c.String(), name, c.TraceString())
}
