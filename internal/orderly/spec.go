package orderly

import (
	"errors"
	"fmt"

	"autarky/internal/fleet"
	"autarky/internal/hostos"
	"autarky/internal/libos"
	"autarky/internal/pagestore"
	"autarky/internal/sgx"
)

// This file is the orderliness model: a declarative table mapping
// (operation, lifecycle phase, condition flags) to the outcome the
// implementation must produce. The checker never hard-codes behaviour —
// every judgement it makes traces back to one row here, and mutating a row
// makes the corresponding interleavings fail with a replayable
// counterexample (orderly_test.go proves that).

// TriState matches a boolean condition: require true, require false, or
// don't care.
type TriState uint8

// TriState values.
const (
	// Any matches both.
	Any TriState = iota
	// Yes requires the condition.
	Yes
	// No requires its absence.
	No
)

func (t TriState) match(b bool) bool { return t == Any || (t == Yes) == b }

// WantKind classifies an expected outcome.
type WantKind uint8

// The outcome classes.
const (
	// WantOK: the operation must succeed.
	WantOK WantKind = iota
	// WantErrIs: the error chain must contain the sentinel.
	WantErrIs
	// WantTerm: the enclave must be terminated with the given reason
	// (errors.As to *sgx.TerminationError).
	WantTerm
	// WantConfig: the error must be a *libos.ConfigError naming the field.
	WantConfig
)

// Want is the expected outcome of one rule.
type Want struct {
	Kind   WantKind
	Err    error                 // WantErrIs sentinel
	Reason sgx.TerminationReason // WantTerm reason
	Field  string                // WantConfig field
}

// String renders the expectation for counterexample messages.
func (w Want) String() string {
	switch w.Kind {
	case WantOK:
		return "success"
	case WantErrIs:
		return fmt.Sprintf("error matching %q", w.Err)
	case WantTerm:
		return fmt.Sprintf("termination (%s)", w.Reason)
	case WantConfig:
		return fmt.Sprintf("config rejection of field %q", w.Field)
	default:
		return fmt.Sprintf("Want(%d)", int(w.Kind))
	}
}

// check judges a raw outcome against the expectation. It returns "" when
// the outcome conforms and a description of the divergence otherwise. A
// panic never conforms.
func (w Want) check(err error, panicked bool) string {
	if panicked {
		return err.Error()
	}
	switch w.Kind {
	case WantOK:
		if err != nil {
			return fmt.Sprintf("unexpected error: %v", err)
		}
	case WantErrIs:
		if err == nil {
			return "silent success"
		}
		if !errors.Is(err, w.Err) {
			return fmt.Sprintf("wrong error class: %v", err)
		}
	case WantTerm:
		var te *sgx.TerminationError
		if err == nil {
			return "silent success"
		}
		if !errors.As(err, &te) {
			return fmt.Sprintf("not a termination: %v", err)
		}
		if te.Reason != w.Reason {
			return fmt.Sprintf("terminated for %s, not %s: %v", te.Reason, w.Reason, err)
		}
	case WantConfig:
		var ce *libos.ConfigError
		if err == nil {
			return "silent success"
		}
		if !errors.As(err, &ce) {
			return fmt.Sprintf("not a config rejection: %v", err)
		}
		if ce.Field != w.Field {
			return fmt.Sprintf("rejected field %q, not %q: %v", ce.Field, w.Field, err)
		}
	}
	return ""
}

// Rule is one row of the orderliness model. The first rule whose guard
// matches (operation, phase, flags) decides the expected outcome; a
// combination no rule covers is skipped by the checker and counted as
// unspecified — enumeration is spec-gated, never silently truncated.
type Rule struct {
	// Op guards the operation.
	Op Op
	// Phases guards the lifecycle phase (empty = any).
	Phases []Phase
	// Guards over the condition flags.
	SelfPaging      TriState
	Tight           TriState
	TamperedHeap    TriState
	TamperedPinned  TriState
	HasCheckpoint   TriState
	MigFresh        TriState
	WatchdogExpired TriState
	// Want is the required outcome.
	Want Want
	// Next, when not PhaseAny, asserts the phase after the operation.
	Next Phase
}

func (r Rule) matches(op Op, c cond) bool {
	if r.Op != op {
		return false
	}
	if len(r.Phases) > 0 {
		ok := false
		for _, p := range r.Phases {
			if p == c.Phase {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return r.SelfPaging.match(c.SelfPaging) &&
		r.Tight.match(c.Tight) &&
		r.TamperedHeap.match(c.TamperedHeap) &&
		r.TamperedPinned.match(c.TamperedPinned) &&
		r.HasCheckpoint.match(c.HasCheckpoint) &&
		r.MigFresh.match(c.MigFresh) &&
		r.WatchdogExpired.match(c.WatchdogExpired)
}

// Spec is an ordered rule table.
type Spec struct {
	Rules []Rule
}

// Rule returns the first matching rule for (op, c).
func (s *Spec) Rule(op Op, c cond) (Rule, bool) {
	for _, r := range s.Rules {
		if r.matches(op, c) {
			return r, true
		}
	}
	return Rule{}, false
}

// Convenience constructors for rows.
func ok() Want                               { return Want{Kind: WantOK} }
func is(err error) Want                      { return Want{Kind: WantErrIs, Err: err} }
func term(reason sgx.TerminationReason) Want { return Want{Kind: WantTerm, Reason: reason} }
func config(field string) Want               { return Want{Kind: WantConfig, Field: field} }
func in(phases ...Phase) []Phase             { return phases }

// DefaultSpec is the orderliness model of the Autarky lifecycle. Comments
// state the invariant each block encodes; the deliberate gaps (no row) are
// listed at the end.
func DefaultSpec() *Spec {
	return &Spec{Rules: []Rule{
		// ---- load ----
		// Loading is legal only into an empty or torn-down address range;
		// a migrated-away enclave's range is vacant, so loading there is
		// legal too (and arms the adopt-onto-live-range refusal below).
		{Op: OpLoad, Phases: in(PhaseAbsent, PhaseDestroyed, PhaseMigrated), Want: ok(), Next: PhaseLoaded},
		// A contradictory configuration is rejected by field name in any
		// phase, before any machine state is touched.
		{Op: OpLoadBad, Want: config("ElideAEX"), Next: PhaseAny},

		// ---- run ----
		// Entering a never-loaded or destroyed enclave hits the stale-
		// handle guard, never a nil dereference.
		{Op: OpRun, Phases: in(PhaseAbsent, PhaseDestroyed), Want: is(hostos.ErrNotLoaded)},
		{Op: OpRun, Phases: in(PhaseSuspended), Want: is(hostos.ErrSuspended), Next: PhaseSuspended},
		// A dead enclave replays its termination verdict on every entry.
		{Op: OpRun, Phases: in(PhaseDead), Want: term(sgx.TerminateIntegrity), Next: PhaseDead},
		// Self-paging detects a tampered heap blob on the very next fetch
		// and terminates — the paper's integrity guarantee.
		{Op: OpRun, Phases: in(PhaseLoaded), SelfPaging: Yes, TamperedHeap: Yes,
			Want: term(sgx.TerminateIntegrity), Next: PhaseDead},
		{Op: OpRun, Phases: in(PhaseLoaded), TamperedHeap: No, TamperedPinned: No,
			Want: ok(), Next: PhaseLoaded},

		// ---- suspend ----
		{Op: OpSuspend, Phases: in(PhaseAbsent, PhaseDestroyed), Want: is(hostos.ErrNotLoaded)},
		{Op: OpSuspend, Phases: in(PhaseSuspended), Want: is(hostos.ErrSuspended), Next: PhaseSuspended},
		{Op: OpSuspend, Phases: in(PhaseDead), Want: is(sgx.ErrEnclaveTerminated), Next: PhaseDead},
		{Op: OpSuspend, Phases: in(PhaseLoaded), SelfPaging: No, Want: ok(), Next: PhaseSuspended},
		// Self-paging wholesale swap-out needs a quota that can take every
		// enclave-managed page back on resume; tight-quota suspension is a
		// deliberate spec gap (see below).
		{Op: OpSuspend, Phases: in(PhaseLoaded), SelfPaging: Yes, Tight: No, Want: ok(), Next: PhaseSuspended},

		// ---- resume ----
		{Op: OpResume, Phases: in(PhaseAbsent, PhaseDestroyed), Want: is(hostos.ErrNotLoaded)},
		{Op: OpResume, Phases: in(PhaseLoaded, PhaseDead), Want: is(hostos.ErrNotSuspended)},
		// Legacy SGX restores nothing on resume — tampering is silently
		// accepted. This row documents the vulnerability Autarky closes.
		{Op: OpResume, Phases: in(PhaseSuspended), SelfPaging: No, Want: ok(), Next: PhaseLoaded},
		// Autarky's resume restores every enclave-managed page through the
		// integrity-checked path: a tampered blob refuses the resume and
		// the enclave stays suspended (refusal, not termination — the
		// enclave never ran).
		{Op: OpResume, Phases: in(PhaseSuspended), SelfPaging: Yes, TamperedHeap: Yes,
			Want: is(pagestore.ErrIntegrity), Next: PhaseSuspended},
		{Op: OpResume, Phases: in(PhaseSuspended), SelfPaging: Yes, TamperedPinned: Yes,
			Want: is(pagestore.ErrIntegrity), Next: PhaseSuspended},
		{Op: OpResume, Phases: in(PhaseSuspended), SelfPaging: Yes, Want: ok(), Next: PhaseLoaded},

		// ---- checkpoint ----
		// Checkpointing a dead or destroyed enclave is refused up front
		// (destroy requires death first, so both surface the same class).
		{Op: OpCheckpoint, Phases: in(PhaseDead, PhaseDestroyed), Want: is(sgx.ErrEnclaveTerminated)},
		{Op: OpCheckpoint, Phases: in(PhaseSuspended), Want: is(hostos.ErrSuspended), Next: PhaseSuspended},
		// Capture drives the real access path, so a tampered heap blob
		// kills the enclave mid-capture; the caller keeps its previous
		// checkpoint.
		{Op: OpCheckpoint, Phases: in(PhaseLoaded), SelfPaging: Yes, TamperedHeap: Yes,
			Want: term(sgx.TerminateIntegrity), Next: PhaseDead},
		{Op: OpCheckpoint, Phases: in(PhaseLoaded), TamperedHeap: No, TamperedPinned: No,
			Want: ok(), Next: PhaseLoaded},

		// ---- restore ----
		// Restoring onto a live incarnation is refused; onto a dead,
		// destroyed or empty range it yields a fresh loaded process.
		{Op: OpRestore, Phases: in(PhaseLoaded, PhaseSuspended), HasCheckpoint: Yes,
			Want: is(hostos.ErrEnclaveLive)},
		{Op: OpRestore, Phases: in(PhaseAbsent, PhaseDead, PhaseDestroyed), HasCheckpoint: Yes,
			Want: ok(), Next: PhaseLoaded},
		// A bit-flipped checkpoint blob fails sealing authentication in
		// any phase, before the live incarnation is touched.
		{Op: OpRestoreBad, HasCheckpoint: Yes, Want: is(sgx.ErrBadCheckpoint), Next: PhaseAny},

		// ---- destroy ----
		// Double-destroy (and destroy-before-load) hit the stale-handle
		// guard; destroying a live enclave is refused.
		{Op: OpDestroy, Phases: in(PhaseAbsent, PhaseDestroyed), Want: is(hostos.ErrNotLoaded)},
		{Op: OpDestroy, Phases: in(PhaseLoaded, PhaseSuspended), Want: is(hostos.ErrEnclaveLive)},
		{Op: OpDestroy, Phases: in(PhaseDead), Want: ok(), Next: PhaseDestroyed},

		// ---- synthetic fault delivery ----
		// A fault the hardware never raised: after destroy it hits the
		// stale-registration guard (this used to be a nil-deref panic); on
		// a dead enclave the termination verdict replays; on a live one
		// the resume is refused — there is no SSA frame to resume from.
		{Op: OpFault, Phases: in(PhaseDestroyed), Want: is(hostos.ErrNotLoaded)},
		{Op: OpFault, Phases: in(PhaseDead), Want: term(sgx.TerminateIntegrity), Next: PhaseDead},
		{Op: OpFault, Phases: in(PhaseLoaded, PhaseSuspended), SelfPaging: Yes,
			Want: is(sgx.ErrEPCMConflict)},
		{Op: OpFault, Phases: in(PhaseLoaded, PhaseSuspended), SelfPaging: No, TamperedHeap: No,
			Want: is(sgx.ErrEPCMConflict)},

		// ---- synthetic timer delivery ----
		{Op: OpTimer, Phases: in(PhaseDestroyed), Want: is(hostos.ErrNotLoaded)},
		{Op: OpTimer, Phases: in(PhaseDead), Want: term(sgx.TerminateIntegrity), Next: PhaseDead},
		{Op: OpTimer, Phases: in(PhaseLoaded, PhaseSuspended), Want: is(sgx.ErrEPCMConflict)},

		// ---- attacker moves ----
		// Tampering with the backing store always "succeeds" — it is the
		// OS acting on memory it legitimately holds. Detection happens
		// later, at fetch time; that is the whole point.
		{Op: OpTamper, Phases: in(PhaseLoaded, PhaseSuspended, PhaseDead), Want: ok(), Next: PhaseAny},
		{Op: OpTamperPinned, Phases: in(PhaseSuspended), SelfPaging: Yes, Want: ok(), Next: PhaseSuspended},

		// ---- backend swap ----
		// Swapping the paging backend under resident enclaves would
		// orphan their sealed blobs mid-flight; it is refused until the
		// range is clean. Migration retires the resident enclave, so a
		// migrated-away machine is clean.
		{Op: OpSwapBackend, Phases: in(PhaseAbsent, PhaseDestroyed, PhaseMigrated), Want: ok()},
		{Op: OpSwapBackend, Phases: in(PhaseLoaded, PhaseSuspended, PhaseDead),
			Want: is(hostos.ErrEnclavesLoaded)},

		// ---- migration: quiesce ----
		// Quiescing mirrors checkpoint capture (it drives the same access
		// path, so a tampered blob kills the source mid-seal) but retires
		// the incarnation on success: the handle answers ErrMigrated from
		// then on, and quiesce-twice is its own misuse edge.
		// Like checkpoint, the libos sees the dead enclave before the
		// kernel sees the stale handle, so dead and destroyed surface the
		// same termination class.
		{Op: OpQuiesce, Phases: in(PhaseDead, PhaseDestroyed), Want: is(sgx.ErrEnclaveTerminated)},
		{Op: OpQuiesce, Phases: in(PhaseMigrated), Want: is(hostos.ErrMigrated), Next: PhaseMigrated},
		{Op: OpQuiesce, Phases: in(PhaseSuspended), Want: is(hostos.ErrSuspended), Next: PhaseSuspended},
		{Op: OpQuiesce, Phases: in(PhaseLoaded), SelfPaging: Yes, TamperedHeap: Yes,
			Want: term(sgx.TerminateIntegrity), Next: PhaseDead},
		{Op: OpQuiesce, Phases: in(PhaseLoaded), TamperedHeap: No, TamperedPinned: No,
			Want: ok(), Next: PhaseMigrated},

		// ---- migration: adopt ----
		// A fresh envelope adopts only into a vacant range: a live (or
		// suspended) enclave there refuses the adoption, a dead or
		// torn-down one is cleaned up first. A committed envelope is
		// refused as stale in every phase — the counter service closes the
		// fork-and-replay channel no matter what the machine looks like.
		{Op: OpAdopt, MigFresh: Yes, Phases: in(PhaseLoaded, PhaseSuspended),
			Want: is(hostos.ErrEnclaveLive)},
		{Op: OpAdopt, MigFresh: Yes, Phases: in(PhaseMigrated, PhaseDead, PhaseDestroyed),
			Want: ok(), Next: PhaseLoaded},
		{Op: OpAdopt, MigFresh: No, Want: is(sgx.ErrStaleMigration), Next: PhaseAny},

		// ---- migration: the retired handle ----
		// Every kernel service on a migrated-away handle answers
		// ErrMigrated (a refinement of ErrNotLoaded); the libos checkpoint
		// path sees the dead enclave first and refuses with the
		// termination sentinel, exactly as for any other dead enclave.
		{Op: OpRun, Phases: in(PhaseMigrated), Want: is(hostos.ErrMigrated), Next: PhaseMigrated},
		{Op: OpSuspend, Phases: in(PhaseMigrated), Want: is(hostos.ErrMigrated), Next: PhaseMigrated},
		{Op: OpResume, Phases: in(PhaseMigrated), Want: is(hostos.ErrMigrated), Next: PhaseMigrated},
		{Op: OpDestroy, Phases: in(PhaseMigrated), Want: is(hostos.ErrMigrated), Next: PhaseMigrated},
		{Op: OpCheckpoint, Phases: in(PhaseMigrated), Want: is(sgx.ErrEnclaveTerminated), Next: PhaseMigrated},
		{Op: OpRestore, Phases: in(PhaseMigrated), HasCheckpoint: Yes, Want: ok(), Next: PhaseLoaded},
		{Op: OpFault, Phases: in(PhaseMigrated), Want: is(hostos.ErrMigrated), Next: PhaseMigrated},
		{Op: OpTimer, Phases: in(PhaseMigrated), Want: is(hostos.ErrMigrated), Next: PhaseMigrated},

		// ---- chaos: crash-stop, heartbeat, failover ----
		// The crash itself is nature's move: it always lands on a running
		// host. From then on only the watchdog edges are defined — the
		// incarnation is unreachable, not misbehaving.
		{Op: OpCrash, Phases: in(PhaseLoaded), Want: ok(), Next: PhaseCrashed},
		// The blind probe: silence on a crashed host, an answer anywhere
		// else — whatever state the enclave is in, the host is up.
		{Op: OpHeartbeat, Phases: in(PhaseCrashed), Want: is(fleet.ErrHeartbeatMissed), Next: PhaseCrashed},
		{Op: OpHeartbeat, Want: ok(), Next: PhaseAny},
		// Failover discipline: recovery requires the death certificate
		// (two consecutive missed beats). Without it the restore is the
		// split-brain probe — on a beating host, and even on a crashed one
		// not yet declared dead, the incarnation's registration still
		// occupies the range and refuses the restore. With it, the fence
		// vacates the range and the checkpoint re-homes.
		{Op: OpFailover, Phases: in(PhaseLoaded, PhaseSuspended), HasCheckpoint: Yes,
			Want: is(hostos.ErrEnclaveLive)},
		{Op: OpFailover, Phases: in(PhaseCrashed), WatchdogExpired: No, HasCheckpoint: Yes,
			Want: is(hostos.ErrEnclaveLive), Next: PhaseCrashed},
		{Op: OpFailover, Phases: in(PhaseCrashed), WatchdogExpired: Yes, HasCheckpoint: Yes,
			Want: ok(), Next: PhaseLoaded},

		// Deliberate gaps (no row → the checker skips, counts, and never
		// explores past the combination):
		//   - legacy + tampered + {run, checkpoint, fault}: the legacy
		//     demand pager feeds tampered plaintext straight into the
		//     enclave; the simulator's trusted context traps the resulting
		//     mis-wiring loudly instead of modelling silent corruption.
		//   - self-paging + tight quota + suspend: resume could never
		//     take all enclave-managed pages back under the quota.
		//   - load into a live/dead range: two enclaves sharing one
		//     page-table range is not a state the kernel model supports.
		//   - quiesce outside a migration scenario (or before any load):
		//     the world has no migration machinery (or no process) to
		//     drive, so the op is structurally impossible, not refused.
		//   - adopt with no captured envelope: there is nothing to
		//     present to the counter service yet.
		//   - tamper at PhaseMigrated: the retired incarnation's sealed
		//     blobs were dropped with its backing store, so there is no
		//     blob left to corrupt.
		//   - crash outside a Crash scenario, and crash at PhaseSuspended:
		//     the one-machine fence retires the lost registration, and a
		//     suspended registration cannot be retired — a host lost
		//     mid-swap-out is beyond what this model can express.
		//   - {run, suspend, resume, checkpoint, quiesce, adopt, destroy,
		//     fault, timer, tamper} at PhaseCrashed: the host is down, so
		//     there is no kernel to carry the call — the combination is
		//     unreachable, not refused. In particular quiesce/adopt racing
		//     the crash resolve to whichever side moved first: a seal
		//     completed before the crash leaves an adoptable envelope
		//     (adopt after failover probes it), a crash first leaves only
		//     the checkpoint path.
		//   - failover with no checkpoint: the supervisor has nothing to
		//     restore from; at fleet level that tenant is lost (ErrCrashed)
		//     rather than refused.
	}}
}

// Clone deep-copies the spec so tests can mutate rows without aliasing.
func (s *Spec) Clone() *Spec {
	out := &Spec{Rules: make([]Rule, len(s.Rules))}
	copy(out.Rules, s.Rules)
	for i := range out.Rules {
		out.Rules[i].Phases = append([]Phase(nil), s.Rules[i].Phases...)
	}
	return out
}
