package orderly

import (
	"reflect"
	"strings"
	"testing"

	"autarky/internal/hostos"
)

// checkDepth keeps the unit tests fast; the e13 experiment explores the
// full default depth.
const checkDepth = 4

// TestSpecConformance: the implementation satisfies the orderliness model
// on every scenario — no violations, no panics, and a meaningful amount of
// exploration actually happened.
func TestSpecConformance(t *testing.T) {
	for _, sc := range DefaultScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			r := Run(Config{Scenario: sc, MaxDepth: checkDepth})
			for _, v := range r.Violations {
				t.Errorf("violation: %s", v)
			}
			if r.Interleavings < 50 {
				t.Fatalf("only %d interleavings explored — executor wired wrong?", r.Interleavings)
			}
			if r.States == 0 || r.Transitions == 0 {
				t.Fatalf("no states/transitions recorded: %+v", r)
			}
			if !r.HasSnapshot {
				t.Fatalf("no metrics snapshot recorded")
			}
		})
	}
}

// TestCheckerDeterministic: two explorations of the same configuration
// produce identical results — including the order-sensitive trace digest —
// and sharding by first op partitions the exploration exactly.
func TestCheckerDeterministic(t *testing.T) {
	sc, _ := ScenarioByName("sp-sgx1")
	a := Run(Config{Scenario: sc, MaxDepth: checkDepth})
	b := Run(Config{Scenario: sc, MaxDepth: checkDepth})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("rerun diverged:\n%+v\n%+v", a, b)
	}
	// A deeper exploration strictly extends the shallower one's trace set.
	c := Run(Config{Scenario: sc, MaxDepth: checkDepth + 1})
	if c.Interleavings <= a.Interleavings {
		t.Fatalf("depth %d explored %d interleavings, depth %d only %d",
			checkDepth, a.Interleavings, checkDepth+1, c.Interleavings)
	}
}

// mutate finds the first rule matching pred and rewrites its expectation,
// returning the mutated clone.
func mutate(t *testing.T, pred func(Rule) bool, want Want) *Spec {
	t.Helper()
	s := DefaultSpec().Clone()
	for i, r := range s.Rules {
		if pred(r) {
			s.Rules[i].Want = want
			s.Rules[i].Next = PhaseAny
			return s
		}
	}
	t.Fatalf("no rule matched the mutation predicate")
	return nil
}

func hasPhase(r Rule, p Phase) bool {
	for _, ph := range r.Phases {
		if ph == p {
			return true
		}
	}
	return false
}

// TestMutationYieldsCounterexample: every injected spec violation is found
// by the checker and comes back as a counterexample that (a) replays as a
// failure under the broken spec, (b) replays clean under the real spec —
// proving the implementation, not the checker, defines the baseline — and
// (c) renders as a standalone failing Go test.
func TestMutationYieldsCounterexample(t *testing.T) {
	cases := []struct {
		name     string
		scenario string
		spec     *Spec
	}{
		{
			// Claim double-destroy silently succeeds.
			name:     "destroy-absent-ok",
			scenario: "sp-sgx1",
			spec: mutate(t, func(r Rule) bool {
				return r.Op == OpDestroy && hasPhase(r, PhaseAbsent)
			}, ok()),
		},
		{
			// Claim running a suspended enclave works.
			name:     "run-suspended-ok",
			scenario: "legacy",
			spec: mutate(t, func(r Rule) bool {
				return r.Op == OpRun && hasPhase(r, PhaseSuspended)
			}, ok()),
		},
		{
			// Claim Autarky resumes over a tampered pinned page.
			name:     "resume-tampered-ok",
			scenario: "sp-sgx1-roomy",
			spec: mutate(t, func(r Rule) bool {
				return r.Op == OpResume && hasPhase(r, PhaseSuspended) &&
					r.SelfPaging == Yes && r.TamperedPinned == Yes
			}, ok()),
		},
		{
			// Claim the wrong sentinel for run-before-load.
			name:     "run-absent-wrong-sentinel",
			scenario: "legacy",
			spec: mutate(t, func(r Rule) bool {
				return r.Op == OpRun && hasPhase(r, PhaseAbsent)
			}, is(hostos.ErrSuspended)),
		},
		{
			// Claim a failover without a death certificate succeeds — the
			// split-brain restore the supervisor discipline must refuse.
			name:     "failover-premature-ok",
			scenario: "sp-crash",
			spec: mutate(t, func(r Rule) bool {
				return r.Op == OpFailover && hasPhase(r, PhaseCrashed) &&
					r.WatchdogExpired == No
			}, ok()),
		},
		{
			// Claim a failover onto a host that is still beating succeeds.
			name:     "failover-splitbrain-ok",
			scenario: "sp-crash",
			spec: mutate(t, func(r Rule) bool {
				return r.Op == OpFailover && hasPhase(r, PhaseLoaded)
			}, ok()),
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sc, _ := ScenarioByName(tc.scenario)
			r := Run(Config{Scenario: sc, MaxDepth: checkDepth, Spec: tc.spec})
			if len(r.Violations) == 0 {
				t.Fatalf("mutated spec produced no violations")
			}
			cx := r.Violations[0]
			if got := Replay(tc.spec, sc, cx.Trace); got == nil {
				t.Fatalf("counterexample %s does not replay under the mutated spec", cx)
			}
			if got := Replay(nil, sc, cx.Trace); got != nil {
				t.Fatalf("counterexample %s also fails under the real spec: %s", cx, got)
			}
			src := cx.GoSource()
			for _, frag := range []string{"package orderly_test", "func TestCounterexample_", cx.TraceString()} {
				if !strings.Contains(src, frag) {
					t.Fatalf("GoSource missing %q:\n%s", frag, src)
				}
			}
		})
	}
}

// TestParseTraceRoundTrip: the counterexample trace format survives a
// format → parse → format cycle, and rejects garbage.
func TestParseTraceRoundTrip(t *testing.T) {
	in := "sp-sgx1:load>suspend>tamper>resume"
	sc, ops, err := ParseTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "sp-sgx1" || len(ops) != 4 || ops[0] != OpLoad || ops[3] != OpResume {
		t.Fatalf("parsed %q into %s %v", in, sc.Name, ops)
	}
	if got := FormatTrace(sc.Name, ops); got != in {
		t.Fatalf("round trip: %q != %q", got, in)
	}
	for _, bad := range []string{"", "noscenario", "nope:load", "legacy:frobnicate", "legacy:"} {
		if _, _, err := ParseTrace(bad); err == nil {
			t.Fatalf("ParseTrace(%q) accepted", bad)
		}
	}
}

// TestReplayConformingTrace: a legal ordering replays clean, and the
// documented attack ordering (suspend, tamper a pinned page, resume)
// replays clean too — the refusal IS the specified behaviour.
func TestReplayConformingTrace(t *testing.T) {
	for _, trace := range []string{
		"legacy:load>run>suspend>resume>run",
		"sp-sgx1-roomy:load>suspend>tamper-pinned>resume",
		"sp-sgx1:load>tamper>run>destroy>load",
		"sp-sgx1-replay:load>run>tamper>run",
		// The supervised crash lifecycle: checkpoint, crash, two missed
		// beats (the death certificate), failover, and the recovered
		// incarnation runs.
		"sp-crash:load>checkpoint>crash>heartbeat>heartbeat>failover>run",
		// A premature failover is refused (one missed beat is suspicion,
		// not death); the next miss completes the certificate.
		"sp-crash:load>checkpoint>crash>heartbeat>failover>heartbeat>failover",
		// Failure detection interleaved with migration: the crash lands on
		// the adopted incarnation and recovery goes through its checkpoint.
		"sp-crash:load>quiesce>adopt>checkpoint>crash>heartbeat>heartbeat>failover",
	} {
		sc, ops, err := ParseTrace(trace)
		if err != nil {
			t.Fatal(err)
		}
		if cx := Replay(nil, sc, ops); cx != nil {
			t.Errorf("conforming trace %q reported: %s", trace, cx)
		}
	}
}
